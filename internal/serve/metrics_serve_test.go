package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"rankedaccess/client"
	"rankedaccess/internal/engine"
	"rankedaccess/internal/metrics"
	"rankedaccess/internal/workload"
)

// metricsServer boots a handler over a small generated instance.
func metricsServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	rng := rand.New(rand.NewSource(33))
	_, in := workload.TwoPath(rng, 256, 32, 0.3)
	e := engine.New(in, engine.Options{})
	srv := httptest.NewServer(NewHandlerWith(e, cfg))
	t.Cleanup(srv.Close)
	t.Cleanup(func() { e.Close() })
	return srv
}

// scrapeMetrics fetches and parses /metrics, failing the test on any
// malformed line, and returns samples keyed by Sample.Key().
func scrapeMetrics(t *testing.T, srv *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("scrape Content-Type = %q", ct)
	}
	samples, err := metrics.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	byKey := make(map[string]float64, len(samples))
	for _, s := range samples {
		byKey[s.Key()] = s.Value
	}
	return byKey
}

func TestMetricsScrapeCoversServingActivity(t *testing.T) {
	srv := metricsServer(t, Config{})

	post(t, srv, "/v1/instance/access", accessRequest{
		specPayload: specPayload{Query: twoPath, Order: "x, y, z"}, Ks: []int64{0, 1},
	}, nil)
	post(t, srv, "/v1/instance/count", countRequest{Query: twoPath}, nil)
	// A malformed request must land in the 4xx class of the same series.
	resp, err := srv.Client().Post(srv.URL+"/v1/instance/access", "application/json", strings.NewReader(`{"query": `))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed access: %d", resp.StatusCode)
	}
	get(t, srv, "/v1/stats", nil)

	got := scrapeMetrics(t, srv)
	for key, min := range map[string]float64{
		`ra_http_requests_total|code=2xx|endpoint=instance_access`:                 1,
		`ra_http_requests_total|code=4xx|endpoint=instance_access`:                 1,
		`ra_http_requests_total|code=2xx|endpoint=instance_count`:                  1,
		`ra_http_requests_total|code=2xx|endpoint=stats`:                           1,
		`ra_http_request_duration_seconds_count|endpoint=instance_access`:          2,
		`ra_engine_cache_misses_total`:                                             1,
		`ra_engine_tuples`:                                                         1,
		`ra_engine_instance_version`:                                               0,
		`ra_engine_wal_errors_total`:                                               0,
		`ra_serve_open_cursors`:                                                    0,
		`ra_http_request_duration_seconds_bucket|endpoint=instance_access|le=+Inf`: 2,
	} {
		v, ok := got[key]
		if !ok {
			t.Errorf("scrape is missing %s", key)
			continue
		}
		if v < min {
			t.Errorf("%s = %v, want >= %v", key, v, min)
		}
	}
	// In-flight gauges must be back to zero with no requests running.
	if v := got[`ra_http_in_flight|endpoint=instance_access`]; v != 0 {
		t.Errorf("in-flight after drain = %v", v)
	}
}

func TestMetricsCountShedRequests(t *testing.T) {
	// A one-token bucket: the first admitted request drains it, the
	// second sheds with 429 — which must still be counted by the
	// middleware (the shed happens inside the instrumented chain).
	srv := metricsServer(t, Config{RatePerSec: 0.001, RateBurst: 1})
	post(t, srv, "/v1/instance/count", countRequest{Query: twoPath}, nil)
	resp := postRaw(t, srv, "/v1/instance/count", countRequest{Query: twoPath})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429", resp.StatusCode)
	}
	got := scrapeMetrics(t, srv)
	if v := got[`ra_http_requests_total|code=4xx|endpoint=instance_count`]; v != 1 {
		t.Errorf("4xx count = %v, want 1 (shed not counted)", v)
	}
	if v := got[`ra_serve_shed_rate_limited_total`]; v != 1 {
		t.Errorf("shed_rate_limited_total = %v, want 1", v)
	}
}

func TestLegacyShimsByteIdenticalWithDeprecationHeaders(t *testing.T) {
	srv := metricsServer(t, Config{})
	body := func(path string) ([]byte, *http.Response) {
		raw, _ := json.Marshal(accessRequest{
			specPayload: specPayload{Query: twoPath, Order: "x, y, z"}, Ks: []int64{0, 2, 5},
		})
		resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b, resp
	}
	v1Body, v1Resp := body("/v1/instance/access")
	legacyBody, legacyResp := body("/access")
	if !bytes.Equal(v1Body, legacyBody) {
		t.Fatalf("shim body diverged:\nv1:     %s\nlegacy: %s", v1Body, legacyBody)
	}
	if h := legacyResp.Header.Get("Deprecation"); h != "true" {
		t.Errorf("legacy Deprecation header = %q, want true", h)
	}
	if h := legacyResp.Header.Get("Link"); !strings.Contains(h, "/v1/instance/access") || !strings.Contains(h, "successor-version") {
		t.Errorf("legacy Link header = %q", h)
	}
	if h := v1Resp.Header.Get("Deprecation"); h != "" {
		t.Errorf("v1 route carries Deprecation header %q", h)
	}

	// The legacy call is visible in the deprecation counter and in the
	// typed stats — and the shared endpoint series counts both calls.
	var st statsResponse
	get(t, srv, "/v1/stats", &st)
	if st.DeprecatedRequests != 1 {
		t.Errorf("stats deprecated_requests = %d, want 1", st.DeprecatedRequests)
	}
	got := scrapeMetrics(t, srv)
	if v := got[`ra_http_deprecated_requests_total|endpoint=instance_access`]; v != 1 {
		t.Errorf("deprecated counter = %v, want 1", v)
	}
	if v := got[`ra_http_requests_total|code=2xx|endpoint=instance_access`]; v != 2 {
		t.Errorf("shared endpoint series = %v, want 2 (v1 + shim)", v)
	}
}

// TestStatsSchemaMatchesClient keeps the server's /v1/stats response
// and the SDK's typed Stats in lockstep, field for field, by comparing
// their JSON key sets.
func TestStatsSchemaMatchesClient(t *testing.T) {
	keys := func(v any) map[string]bool {
		out := map[string]bool{}
		rt := reflect.TypeOf(v)
		for i := 0; i < rt.NumField(); i++ {
			tag := rt.Field(i).Tag.Get("json")
			if name, _, _ := strings.Cut(tag, ","); name != "" && name != "-" {
				out[name] = true
			}
		}
		return out
	}
	server, sdk := keys(statsResponse{}), keys(client.Stats{})
	for k := range server {
		if !sdk[k] {
			t.Errorf("client.Stats is missing %q (server exports it)", k)
		}
	}
	for k := range sdk {
		if !server[k] {
			t.Errorf("client.Stats has %q the server does not export", k)
		}
	}
}

func TestStreamedCursorCountedByMiddleware(t *testing.T) {
	srv := metricsServer(t, Config{})
	post(t, srv, "/v1/queries", registerRequest{
		Name: "m_by_xyz", specPayload: specPayload{Query: twoPath, Order: "x, y, z"},
	}, nil)
	var cr cursorResponse
	post(t, srv, "/v1/queries/m_by_xyz/cursor", cursorRequest{}, &cr)

	// NDJSON streaming never calls WriteHeader explicitly: the recorder
	// must still classify it 2xx, and ResponseController flushes must
	// keep working through the wrapper.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/cursors/"+cr.Cursor+"/next?n=100000", nil)
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	n, err := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || n == 0 {
		t.Fatalf("stream: status %d, %d bytes, err %v", resp.StatusCode, n, err)
	}
	got := scrapeMetrics(t, srv)
	if v := got[`ra_http_requests_total|code=2xx|endpoint=cursor_next`]; v != 1 {
		t.Errorf("cursor_next 2xx = %v, want 1", v)
	}
	if v := got[`ra_http_requests_total|code=2xx|endpoint=cursor_create`]; v != 1 {
		t.Errorf("cursor_create 2xx = %v, want 1", v)
	}
}

func TestRequestLogging(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&lockedWriter{mu: &mu, w: &buf}, nil))
	srv := metricsServer(t, Config{RequestLog: logger})

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/instance/count",
		strings.NewReader(fmt.Sprintf(`{"query": %q}`, twoPath)))
	req.Header.Set("X-Request-ID", "test-rid-7")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "test-rid-7" {
		t.Errorf("clean client id not echoed: %q", got)
	}

	// An id with log-hostile characters is replaced, not trusted.
	req2, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/instance/count",
		strings.NewReader(fmt.Sprintf(`{"query": %q}`, twoPath)))
	req2.Header.Set("X-Request-ID", `bad "id"`)
	resp2, err := srv.Client().Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); got == "" || strings.Contains(got, "bad") {
		t.Errorf("hostile id not replaced: %q", got)
	}

	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	if len(lines) != 2 {
		t.Fatalf("%d log records, want 2:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	var rec struct {
		Msg       string  `json:"msg"`
		RequestID string  `json:"request_id"`
		Endpoint  string  `json:"endpoint"`
		Status    int     `json:"status"`
		Method    string  `json:"method"`
		Path      string  `json:"path"`
		Duration  float64 `json:"duration"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("log record is not JSON: %v\n%s", err, lines[0])
	}
	if rec.Msg != "request" || rec.RequestID != "test-rid-7" ||
		rec.Endpoint != "instance_count" || rec.Status != http.StatusOK ||
		rec.Method != http.MethodPost || rec.Path != "/v1/instance/count" {
		t.Errorf("log record = %+v", rec)
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// TestConcurrentTrafficAndScrapes hammers instrumented endpoints while
// scraping; run under -race this is the data-race check for the whole
// middleware + registry path, and every mid-flight scrape must parse.
func TestConcurrentTrafficAndScrapes(t *testing.T) {
	srv := metricsServer(t, Config{})
	const workers, perWorker = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				raw, _ := json.Marshal(countRequest{Query: twoPath})
				resp, err := srv.Client().Post(srv.URL+"/v1/instance/count", "application/json", bytes.NewReader(raw))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			resp, err := srv.Client().Get(srv.URL + "/metrics")
			if err != nil {
				t.Error(err)
				return
			}
			_, perr := metrics.ParseText(resp.Body)
			resp.Body.Close()
			if perr != nil {
				t.Errorf("mid-flight scrape unparseable: %v", perr)
				return
			}
		}
	}()
	wg.Wait()
	got := scrapeMetrics(t, srv)
	if v := got[`ra_http_requests_total|code=2xx|endpoint=instance_count`]; v != workers*perWorker {
		t.Errorf("2xx count = %v, want %d", v, workers*perWorker)
	}
}

func TestOpsHandlerServesPprofAndMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	_, in := workload.TwoPath(rng, 128, 16, 0.3)
	e := engine.New(in, engine.Options{})
	defer e.Close()
	api := NewHandlerWith(e, Config{})
	ops := httptest.NewServer(NewOpsHandler(api))
	defer ops.Close()

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/metrics", "/healthz", "/readyz"} {
		resp, err := ops.Client().Get(ops.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
	}
	// The API mux must NOT expose pprof.
	apiSrv := httptest.NewServer(api)
	defer apiSrv.Close()
	resp, err := apiSrv.Client().Get(apiSrv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("pprof reachable on the API mux")
	}
}
