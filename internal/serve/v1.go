// v1.go implements the versioned prepared-query API.
//
// The paper's economics — expensive preprocessing, O(log n) probes —
// want the classic prepared-statement shape: register a (query, order,
// FDs) spec once under a name, then probe and stream it by name with
// zero per-request re-parsing. The v1 surface is exactly that:
//
//	POST   /v1/queries                     register {"name", "query", ...}
//	GET    /v1/queries                     list registrations
//	GET    /v1/queries/{name}              one registration
//	DELETE /v1/queries/{name}              evict
//	POST   /v1/queries/{name}/access       {"ks": [...]}
//	POST   /v1/queries/{name}/range        {"k0", "k1"}
//	POST   /v1/queries/{name}/select       {"k"}
//	POST   /v1/queries/{name}/count        {}
//	POST   /v1/queries/{name}/classify     {"problem"}
//	POST   /v1/queries/{name}/cursor       {"start"} → opaque cursor token
//	GET    /v1/cursors/{id}/next?n=N       next batch (JSON, or NDJSON
//	                                       when Accept: application/x-ndjson)
//	DELETE /v1/cursors/{id}                close the cursor
//
// Sentinel errors map to stable status codes: an unknown name or cursor
// is 404 (engine.ErrNotPrepared), an out-of-range index is 416
// (access.ErrOutOfBound), and an intractable spec registered with
// "strict": true is 422 (access.ErrIntractable). The 410 Gone mapping
// for engine.ErrCursorInvalidated is retained for API compatibility,
// but the MVCC engine pins every cursor to its epoch, so mutations no
// longer orphan cursors and no current path produces it. A request
// that runs out of deadline inside the engine is 503 with Retry-After
// (see fail).
//
// The hot probe endpoints (/access, /range) coalesce: concurrent
// identical requests against one epoch share a single probe + encode,
// and hot window bodies serve straight from the coalescer's cache
// (keys embed the epoch version, so a write is automatically a miss).
//
// NDJSON streaming writes one JSON row array per line, encoded
// incrementally from pooled buffers and flushed in chunks, so a client
// can consume a multi-million-row window without the server ever
// materializing it. Each chunk write carries a deadline, so a stalled
// reader loses its stream instead of pinning the cursor's epoch.
package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"rankedaccess/internal/access"
	"rankedaccess/internal/engine"
	"rankedaccess/internal/rpc"
	"rankedaccess/internal/values"
)

// statusFor maps cross-layer sentinel errors to the v1 API's stable
// status codes; anything unrecognized is a plain bad request. The
// distributed sentinels follow the same philosophy: an unreachable
// shard node is the server's problem (503, with Retry-After set by
// fail), a shard node whose data moved past the prepared version means
// the registration is gone (410, like an invalidated cursor), and a
// write against a coordinator is not the coordinator's to take (403).
func statusFor(err error) int {
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &mbe):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, engine.ErrNotPrepared):
		return http.StatusNotFound
	case errors.Is(err, access.ErrOutOfBound):
		return http.StatusRequestedRangeNotSatisfiable
	case errors.Is(err, access.ErrIntractable):
		return http.StatusUnprocessableEntity
	case errors.Is(err, engine.ErrCursorInvalidated):
		return http.StatusGone
	case errors.Is(err, rpc.ErrUnavailable):
		return http.StatusServiceUnavailable
	case errors.Is(err, rpc.ErrStaleVersion):
		return http.StatusGone
	case errors.Is(err, engine.ErrReadOnly):
		return http.StatusForbidden
	default:
		return http.StatusBadRequest
	}
}

// failErr writes a structured error with the sentinel-derived status.
func failErr(w http.ResponseWriter, err error) { fail(w, statusFor(err), err) }

// registerRequest registers a spec under a name. With Strict set,
// registration fails (422) unless the plan landed on the tractable side
// of the paper's dichotomy — for callers that would rather know than
// silently pay Θ(|Q(I)|) materialization.
type registerRequest struct {
	Name string `json:"name"`
	specPayload
	Strict bool `json:"strict,omitempty"`
}

// queryInfo describes one registration in v1 responses.
type queryInfo struct {
	Name      string   `json:"name"`
	Gen       uint64   `json:"gen"`
	Query     string   `json:"query"`
	Order     string   `json:"order,omitempty"`
	SumBy     []string `json:"sum_by,omitempty"`
	FDs       []string `json:"fds,omitempty"`
	Mode      string   `json:"mode"`
	Tractable bool     `json:"tractable"`
	Verdict   string   `json:"verdict,omitempty"`
	Total     int64    `json:"total"`
	Version   uint64   `json:"version"`
	shardEcho
}

func infoOf(pi engine.PreparedInfo) queryInfo {
	return queryInfo{
		Name:      pi.ID.Name,
		Gen:       pi.ID.Gen,
		Query:     pi.Spec.Query,
		Order:     pi.Spec.Order,
		SumBy:     pi.Spec.SumBy,
		FDs:       pi.Spec.FDs,
		Mode:      string(pi.Plan.Mode),
		Tractable: pi.Plan.Tractable,
		Verdict:   pi.Plan.Verdict.String(),
		Total:     pi.Total,
		Version:   pi.Version,
		shardEcho: shardInfo(pi.Plan),
	}
}

func pqInfo(pq *engine.PreparedQuery, h *engine.Handle, version uint64) queryInfo {
	return infoOf(engine.PreparedInfo{
		ID: pq.ID(), Spec: pq.Spec(), Plan: h.Plan, Total: h.Total(), Version: version,
	})
}

func (s *server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Strict {
		// Plan BEFORE registering, so a strict rejection changes no
		// registry state (an existing registration of the name keeps
		// serving). Tractability depends only on (query, order, FDs),
		// and the built structure lands in the engine cache, so the
		// Register below reuses it.
		h, err := s.e.PrepareCtx(r.Context(), req.spec())
		if err != nil {
			failErr(w, err)
			return
		}
		if !h.Plan.Tractable {
			failErr(w, fmt.Errorf("serve: strict registration of %q refused: %s: %w",
				req.Name, h.Plan.Verdict.String(), access.ErrIntractable))
			return
		}
	}
	pq, err := s.e.Register(req.Name, req.spec())
	if err != nil {
		failErr(w, err)
		return
	}
	h, err := pq.AcquireCtx(r.Context())
	if err != nil {
		failErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, pqInfo(pq, h, s.e.Version()))
}

type listResponse struct {
	Queries []queryInfo `json:"queries"`
}

func (s *server) handleList(w http.ResponseWriter, _ *http.Request) {
	infos := s.e.ListPrepared()
	resp := listResponse{Queries: make([]queryInfo, len(infos))}
	for i, pi := range infos {
		resp.Queries[i] = infoOf(pi)
	}
	reply(w, resp)
}

// prepared resolves {name} or writes a 404.
func (s *server) prepared(w http.ResponseWriter, r *http.Request) (*engine.PreparedQuery, bool) {
	pq, err := s.e.Prepared(r.PathValue("name"))
	if err != nil {
		failErr(w, err)
		return nil, false
	}
	return pq, true
}

func (s *server) handleGetQuery(w http.ResponseWriter, r *http.Request) {
	pq, ok := s.prepared(w, r)
	if !ok {
		return
	}
	h, err := s.acquireRead(r.Context(), pq)
	if err != nil {
		failErr(w, err)
		return
	}
	reply(w, pqInfo(pq, h, h.Version()))
}

func (s *server) handleEvict(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.e.Evict(name) {
		failErr(w, fmt.Errorf("%w: %q", engine.ErrNotPrepared, name))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

type v1AccessRequest struct {
	Ks []int64 `json:"ks"`
}

func (s *server) handleV1Access(w http.ResponseWriter, r *http.Request) {
	pq, ok := s.prepared(w, r)
	if !ok {
		return
	}
	var req v1AccessRequest
	if !s.decode(w, r, &req) {
		return
	}
	h, err := s.acquireRead(r.Context(), pq)
	if err != nil {
		failErr(w, err)
		return
	}
	if s.coal == nil {
		resp, err := buildAccessResponse(r.Context(), h, req.Ks)
		if err != nil {
			failErr(w, err)
			return
		}
		reply(w, resp)
		return
	}
	key := coalesceKey("access", pq.ID(), h.Version(), req.Ks...)
	body, err := s.coal.do(r.Context(), key, func() ([]byte, error) {
		resp, err := buildAccessResponse(r.Context(), h, req.Ks)
		if err != nil {
			return nil, err
		}
		return encodeJSON(resp)
	})
	if err != nil {
		failErr(w, err)
		return
	}
	writeRaw(w, http.StatusOK, body)
}

type v1RangeRequest struct {
	K0 int64 `json:"k0"`
	K1 int64 `json:"k1"`
}

func (s *server) handleV1Range(w http.ResponseWriter, r *http.Request) {
	pq, ok := s.prepared(w, r)
	if !ok {
		return
	}
	var req v1RangeRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.K1-req.K0 > maxRange {
		fail(w, http.StatusBadRequest, fmt.Errorf("serve: range wider than %d; page the request", maxRange))
		return
	}
	h, err := s.acquireRead(r.Context(), pq)
	if err != nil {
		failErr(w, err)
		return
	}
	if s.coal == nil {
		s.writeRange(w, h, req.K0, req.K1)
		return
	}
	key := coalesceKey("range", pq.ID(), h.Version(), req.K0, req.K1)
	body, err := s.coal.do(r.Context(), key, func() ([]byte, error) {
		flatP := tuplePool.Get().(*[]values.Value)
		flat, err := h.AccessRangeCtx(r.Context(), (*flatP)[:0], req.K0, req.K1)
		if err != nil {
			putTupleBuf(flatP, flat)
			return nil, err
		}
		b, err := encodeJSON(buildRangeResponse(h, flat, req.K0, req.K1))
		putTupleBuf(flatP, flat)
		return b, err
	})
	if err != nil {
		failErr(w, err)
		return
	}
	writeRaw(w, http.StatusOK, body)
}

// writeRange is the uncoalesced /range body path.
func (s *server) writeRange(w http.ResponseWriter, h *engine.Handle, k0, k1 int64) {
	flatP := tuplePool.Get().(*[]values.Value)
	flat, err := h.AccessRange((*flatP)[:0], k0, k1)
	if err != nil {
		putTupleBuf(flatP, flat)
		failErr(w, err)
		return
	}
	reply(w, buildRangeResponse(h, flat, k0, k1))
	putTupleBuf(flatP, flat)
}

type v1SelectRequest struct {
	K int64 `json:"k"`
}

func (s *server) handleV1Select(w http.ResponseWriter, r *http.Request) {
	pq, ok := s.prepared(w, r)
	if !ok {
		return
	}
	var req v1SelectRequest
	if !s.decode(w, r, &req) {
		return
	}
	tuple, err := pq.Select(req.K) // registration-time parse, no re-parsing
	if err != nil {
		failErr(w, err)
		return
	}
	reply(w, selectResponse{K: req.K, Tuple: tuple})
}

func (s *server) handleV1Count(w http.ResponseWriter, r *http.Request) {
	pq, ok := s.prepared(w, r)
	if !ok {
		return
	}
	// The prepared handle already knows |Q(I)| for the current version
	// in O(1) — no re-parse, no counting pass (and, unlike the legacy
	// /count, no free-connex requirement: the materialized fallback
	// counts too).
	h, err := s.acquireRead(r.Context(), pq)
	if err != nil {
		failErr(w, err)
		return
	}
	reply(w, countResponse{Count: h.Total(), shardEcho: shardInfo(h.Plan)})
}

type v1ClassifyRequest struct {
	Problem string `json:"problem"`
}

func (s *server) handleV1Classify(w http.ResponseWriter, r *http.Request) {
	pq, ok := s.prepared(w, r)
	if !ok {
		return
	}
	var req v1ClassifyRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Problem == "" {
		req.Problem = engine.ProblemDirectAccessLex
	}
	v, err := pq.Classify(req.Problem) // registration-time parse, no re-parsing
	if err != nil {
		failErr(w, err)
		return
	}
	reply(w, classifyResponse{Tractable: v.Tractable, Bound: v.Bound, Verdict: v.String(), Trio: v.Trio})
}

type cursorRequest struct {
	Start int64 `json:"start,omitempty"`
}

type cursorResponse struct {
	Cursor string `json:"cursor"`
	Query  string `json:"query"`
	Total  int64  `json:"total"`
	Pos    int64  `json:"pos"`
	Width  int    `json:"width"`
}

func (s *server) handleCursorCreate(w http.ResponseWriter, r *http.Request) {
	pq, ok := s.prepared(w, r)
	if !ok {
		return
	}
	var req cursorRequest
	if !s.decode(w, r, &req) {
		return
	}
	cur, err := pq.Cursor()
	if err != nil {
		failErr(w, err)
		return
	}
	if _, err := cur.Seek(req.Start, io.SeekStart); err != nil {
		failErr(w, err)
		return
	}
	sc, err := s.st.create(pq.ID().Name, cur)
	if err != nil {
		fail(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusCreated, cursorResponse{
		Cursor: sc.id, Query: sc.query, Total: cur.Total(), Pos: cur.Pos(), Width: cur.Width(),
	})
}

// defaultCursorBatch is the /next batch size when ?n= is absent.
const defaultCursorBatch = 1024

// ndjsonChunk rows are encoded and flushed per write in streaming mode.
const ndjsonChunk = 1024

type cursorNextResponse struct {
	Cursor string           `json:"cursor"`
	Query  string           `json:"query"`
	Pos    int64            `json:"pos"`
	Done   bool             `json:"done"`
	Tuples [][]values.Value `json:"tuples"`
}

// cursorByID resolves {id} or writes a 404.
func (s *server) cursorByID(w http.ResponseWriter, r *http.Request) (*serverCursor, bool) {
	id := r.PathValue("id")
	sc := s.st.get(id)
	if sc == nil {
		failErr(w, fmt.Errorf("%w: cursor %q", engine.ErrNotPrepared, id))
		return nil, false
	}
	return sc, true
}

func (s *server) handleCursorNext(w http.ResponseWriter, r *http.Request) {
	sc, ok := s.cursorByID(w, r)
	if !ok {
		return
	}
	n := defaultCursorBatch
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 {
			fail(w, http.StatusBadRequest, fmt.Errorf("serve: bad batch size %q", raw))
			return
		}
		n = v
	}
	if n > maxRange {
		n = maxRange
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if wantsNDJSON(r) {
		s.streamNDJSON(sc, w, n)
		return
	}
	flatP := tuplePool.Get().(*[]values.Value)
	flat, emitted, err := sc.cur.NextN((*flatP)[:0], n)
	if err != nil {
		putTupleBuf(flatP, flat)
		s.cursorFail(sc, w, err)
		return
	}
	width := sc.cur.Width()
	resp := cursorNextResponse{
		Cursor: sc.id, Query: sc.query,
		Pos: sc.cur.Pos(), Done: sc.cur.Pos() >= sc.cur.Total(),
		Tuples: make([][]values.Value, emitted),
	}
	for i := 0; i < emitted; i++ {
		resp.Tuples[i] = flat[i*width : (i+1)*width : (i+1)*width]
	}
	reply(w, resp)
	putTupleBuf(flatP, flat)
}

// cursorFail reports a cursor error, dropping cursors that can never
// answer again (invalidated by mutation) so the store does not pin
// their handles.
func (s *server) cursorFail(sc *serverCursor, w http.ResponseWriter, err error) {
	if errors.Is(err, engine.ErrCursorInvalidated) {
		s.st.remove(sc.id)
	}
	failErr(w, err)
}

func wantsNDJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// streamNDJSON emits up to n rows as newline-delimited JSON arrays,
// encoding incrementally from pooled buffers and flushing every
// ndjsonChunk rows: the response is produced row by row straight off
// the structure's O(log n) probes, never materialized whole.
//
// The cursor position is committed to the window end BEFORE the first
// byte (the Seek below), and the committed position and completion
// state travel as X-Cursor-Pos and X-Cursor-Done headers — so client
// and server positions agree even if the client aborts mid-stream.
// The rows themselves then come from the cursor's immutable handle
// snapshot, which cannot be invalidated mid-stream: a stream that
// starts, finishes, at exactly end-pos rows.
//
// Every chunk write carries a fresh deadline (Config.StreamWriteTimeout):
// a reader that accepts no bytes for that long gets its stream cut,
// so one stalled client cannot pin this cursor — and the epoch handle
// it holds — indefinitely. That is backpressure by disconnection, the
// only kind HTTP/1 offers.
func (s *server) streamNDJSON(sc *serverCursor, w http.ResponseWriter, n int) {
	cur := sc.cur
	pos, total := cur.Pos(), cur.Total()
	end := pos + int64(n)
	if end > total {
		end = total
	}
	// Bounds check + position commit in one step: a bad window fails
	// here, before any header is written.
	if _, err := cur.Seek(end, io.SeekStart); err != nil {
		s.cursorFail(sc, w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Cursor", sc.id)
	w.Header().Set("X-Cursor-Pos", strconv.FormatInt(end, 10))
	w.Header().Set("X-Cursor-Done", strconv.FormatBool(end >= total))
	rc := http.NewResponseController(w)
	h := cur.Handle()
	flatP := tuplePool.Get().(*[]values.Value)
	flat := (*flatP)[:0]
	bp := ndjsonPool.Get().(*[]byte)
	b := (*bp)[:0]
	width := h.Width()
	for pos < end {
		k1 := pos + ndjsonChunk
		if k1 > end {
			k1 = end
		}
		var err error
		flat, err = h.AccessRange(flat[:0], pos, k1)
		if err != nil {
			break // internal error; the short stream is the signal
		}
		b = b[:0]
		for i := 0; i < int(k1-pos); i++ {
			b = appendRowNDJSON(b, flat[i*width:(i+1)*width])
		}
		if s.streamWrite > 0 {
			_ = rc.SetWriteDeadline(time.Now().Add(s.streamWrite))
		}
		if _, err := w.Write(b); err != nil {
			break // client went away (or stalled past the write deadline)
		}
		_ = rc.Flush()
		pos = k1
	}
	putTupleBuf(flatP, flat)
	if cap(b) <= maxPooledBuf {
		*bp = b
		ndjsonPool.Put(bp)
	}
}

// appendRowNDJSON appends one row as a JSON array of numbers plus a
// newline: exactly what encoding/json produces for []values.Value, so
// byte-decoding a stream reproduces the batched endpoints' tuples.
func appendRowNDJSON(b []byte, row []values.Value) []byte {
	b = append(b, '[')
	for j, v := range row {
		if j > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, v, 10)
	}
	return append(b, ']', '\n')
}

func (s *server) handleCursorClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.st.remove(id) {
		failErr(w, fmt.Errorf("%w: cursor %q", engine.ErrNotPrepared, id))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
