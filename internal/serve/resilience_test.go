package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rankedaccess/internal/engine"
	"rankedaccess/internal/faultfs"
	"rankedaccess/internal/values"
)

// resilServer boots a handler with the given config over a small
// hand-built two-path instance (R={(1,5),(1,2),(6,2)}, S={(5,3),(2,5)}
// → 3 answers), so tests know exactly which writes add which answers.
func resilServer(t *testing.T, eopts engine.Options, cfg Config) (*httptest.Server, *engine.Engine) {
	t.Helper()
	e := engine.New(nil, eopts)
	if err := e.AddRows("R", [][]values.Value{{1, 5}, {1, 2}, {6, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRows("S", [][]values.Value{{5, 3}, {2, 5}}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandlerWith(e, cfg))
	t.Cleanup(srv.Close)
	return srv, e
}

func stats(t *testing.T, srv *httptest.Server) statsResponse {
	t.Helper()
	var st statsResponse
	get(t, srv, "/stats", &st)
	return st
}

func TestRateLimitSheds429WithRetryAfter(t *testing.T) {
	srv, _ := resilServer(t, engine.Options{}, Config{RatePerSec: 0.1, RateBurst: 2})
	// Registration spends the first token, this probe the second.
	reg := register(t, srv, "q", twoPath, "x, y, z")
	if reg.Total != 3 {
		t.Fatalf("seed total = %d, want 3", reg.Total)
	}
	resp := postRaw(t, srv, "/v1/queries/q/access", v1AccessRequest{Ks: []int64{0}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe within burst: status %d", resp.StatusCode)
	}
	// Burst exhausted; the next request must shed with 429 and an
	// honest Retry-After.
	resp = postRaw(t, srv, "/v1/queries/q/access", v1AccessRequest{Ks: []int64{0}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("probe past burst: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("429 without usable Retry-After (%q)", ra)
	}
	// Monitoring is exempt: /stats must answer and count the shed.
	if st := stats(t, srv); st.Shed429 == 0 {
		t.Fatalf("shed_rate_limited = %d, want > 0", st.Shed429)
	}
}

func TestGateShedsWhenSaturated(t *testing.T) {
	srv, _ := resilServer(t, engine.Options{}, Config{MaxConcurrent: 1, MaxQueue: 0})

	// Occupy the single slot: a request whose body never finishes holds
	// its handler inside decode, past the gate.
	conn, err := net.Dial("tcp", srv.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprint(conn, "POST /count HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: 64\r\n\r\n{")
	deadline := time.Now().Add(5 * time.Second)
	for stats(t, srv).InFlight < 1 {
		if time.Now().After(deadline) {
			t.Fatal("stalled request never occupied the gate")
		}
		time.Sleep(time.Millisecond)
	}

	// With the slot held and no queue, the next request sheds 503.
	resp := postRaw(t, srv, "/count", countRequest{Query: twoPath})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request into full gate: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if st := stats(t, srv); st.Shed503 == 0 {
		t.Fatalf("shed_overload = %d, want > 0", st.Shed503)
	}
	conn.Close()

	// The slot frees once the stalled request dies; service resumes.
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp := postRaw(t, srv, "/count", countRequest{Query: twoPath})
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gate never drained: status %d", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRequestDeadlineMapsTo503(t *testing.T) {
	srv, _ := resilServer(t, engine.Options{}, Config{RequestTimeout: time.Nanosecond})
	// A cold /access must build a structure; the expired deadline stops
	// the build at its first cancellation point, and the API reports
	// overload (503 + Retry-After), not a client error.
	resp := postRaw(t, srv, "/access", accessRequest{
		specPayload: specPayload{Query: twoPath, Order: "x, y, z"},
		Ks:          []int64{0},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("deadline 503 without Retry-After")
	}
}

func TestDegradedEngineShedsWritesServesStaleReads(t *testing.T) {
	// DeltaHard=1: a single overlay edit puts the engine at the hard
	// threshold, i.e. degraded. DeltaSoft=1 keeps the background
	// rebuild from being spawned at 1 edit (spawn needs Edits > soft),
	// so the degradation is stable for the test to observe.
	srv, e := resilServer(t, engine.Options{DeltaHard: 1, DeltaSoft: 1}, Config{})
	register(t, srv, "fresh", twoPath, "x, y, z")
	register(t, srv, "stale", twoPath, "z, y, x") // distinct structure, never re-acquired

	// One row into R that joins S exactly once: (7,5)+(5,3) → answer
	// (7,5,3). The "fresh" query's next probe absorbs it as a 1-edit
	// overlay, which IS the hard threshold.
	var wr writeResponse
	post(t, srv, "/v1/write", writeRequest{Writes: []writeEntry{
		{Relation: "R", Insert: [][]values.Value{{7, 5}}},
	}}, &wr)
	if wr.Inserted != 1 {
		t.Fatalf("write response = %+v", wr)
	}
	var acc accessResponse
	post(t, srv, "/v1/queries/fresh/access", v1AccessRequest{Ks: []int64{0}}, &acc)
	if acc.Total != 4 {
		t.Fatalf("post-write total = %d, want 4", acc.Total)
	}
	if h := e.Health(); !h.Degraded() {
		t.Fatalf("engine not degraded at the hard threshold: %+v", h)
	}
	// Let the server's cached health sample expire.
	time.Sleep(healthTTL + 50*time.Millisecond)

	// Writes shed with 503 + Retry-After while degraded.
	resp := postRaw(t, srv, "/v1/write", writeRequest{Writes: []writeEntry{
		{Relation: "R", Insert: [][]values.Value{{8, 5}}},
	}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded write: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded write 503 without Retry-After")
	}

	// Reads on a never-re-acquired registration serve its last
	// published epoch (3 answers — pre-write) instead of paying a
	// catch-up the server has no budget for.
	var staleAcc accessResponse
	post(t, srv, "/v1/queries/stale/access", v1AccessRequest{Ks: []int64{0}}, &staleAcc)
	if staleAcc.Total != 3 {
		t.Fatalf("degraded read total = %d, want stale 3", staleAcc.Total)
	}
	st := stats(t, srv)
	if !st.Degraded || st.WriteSheds == 0 || st.DegradedReads == 0 {
		t.Fatalf("stats = degraded %v, write_sheds %d, degraded_reads %d",
			st.Degraded, st.WriteSheds, st.DegradedReads)
	}
}

func TestCoalesceServesIdenticalProbesFromCache(t *testing.T) {
	srv, _ := resilServer(t, engine.Options{}, Config{})
	register(t, srv, "q", twoPath, "x, y, z")
	body := v1AccessRequest{Ks: []int64{0, 1, 2}}
	var first, second accessResponse
	post(t, srv, "/v1/queries/q/access", body, &first)
	post(t, srv, "/v1/queries/q/access", body, &second)
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("identical probes diverged: %+v vs %+v", first, second)
	}
	st := stats(t, srv)
	if st.CoalesceHits == 0 || st.CoalesceMisses == 0 {
		t.Fatalf("coalesce hits %d / misses %d, want both > 0", st.CoalesceHits, st.CoalesceMisses)
	}

	// A write publishes a new epoch; the same request must NOT be
	// served from the old epoch's cache entry.
	var wr writeResponse
	post(t, srv, "/v1/write", writeRequest{Writes: []writeEntry{
		{Relation: "R", Insert: [][]values.Value{{7, 5}}},
	}}, &wr)
	var third accessResponse
	post(t, srv, "/v1/queries/q/access", body, &third)
	if third.Total != first.Total+1 {
		t.Fatalf("post-write coalesced read: total %d, want %d", third.Total, first.Total+1)
	}
}

// TestCoalescedProbesRacingEpochSwap hammers coalesced range windows
// while a writer publishes new epochs, and checks every response
// against the identity oracle: with only ascending (i,i) inserts into
// R and query Q(x,y) :- R(x,y) ordered by (x,y), row i of ANY epoch is
// (i+1,i+1), and totals only grow. A response mixing epochs inside one
// body, or a cache entry outliving its epoch, breaks one of those.
func TestCoalescedProbesRacingEpochSwap(t *testing.T) {
	e := engine.New(nil, engine.Options{})
	if err := e.AddRows("R", [][]values.Value{{1, 1}}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(srv.Close)
	register(t, srv, "ids", "Q(x, y) :- R(x, y)", "x, y")

	const rows = 24
	const readers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := srv.Client()
			window := int64(1) // grows to the last total this reader saw
			for {
				select {
				case <-stop:
					return
				default:
				}
				body, err := json.Marshal(v1RangeRequest{K0: 0, K1: window})
				if err != nil {
					errc <- err
					return
				}
				resp, err := client.Post(srv.URL+"/v1/queries/ids/range", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				var rr rangeResponse
				err = json.NewDecoder(resp.Body).Decode(&rr)
				resp.Body.Close()
				if err != nil {
					errc <- fmt.Errorf("decoding range (status %d): %w", resp.StatusCode, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("range status %d", resp.StatusCode)
					return
				}
				if int64(len(rr.Tuples)) != window || rr.Total < window {
					errc <- fmt.Errorf("window [0,%d): %d tuples under total %d", window, len(rr.Tuples), rr.Total)
					return
				}
				for i, tup := range rr.Tuples {
					if len(tup) != 2 || tup[0] != values.Value(i+1) || tup[1] != values.Value(i+1) {
						errc <- fmt.Errorf("epoch mix: row %d = %v under total %d", i, tup, rr.Total)
						return
					}
				}
				// Totals are monotone, so the observed total is a valid
				// window bound against every future epoch.
				window = rr.Total
			}
		}()
	}
	for i := 2; i <= rows; i++ {
		var wr writeResponse
		post(t, srv, "/v1/write", writeRequest{Writes: []writeEntry{
			{Relation: "R", Insert: [][]values.Value{{values.Value(i), values.Value(i)}}},
		}}, &wr)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// Fresh-build oracle for the final epoch.
	var final rangeResponse
	post(t, srv, "/v1/queries/ids/range", v1RangeRequest{K0: 0, K1: rows}, &final)
	if final.Total != rows || len(final.Tuples) != rows {
		t.Fatalf("final epoch: total %d, tuples %d, want %d", final.Total, len(final.Tuples), rows)
	}
}

func TestHealthzAndReadyzHealthy(t *testing.T) {
	srv, _ := resilServer(t, engine.Options{}, Config{SnapshotDir: t.TempDir()})
	var hz healthzResponse
	if resp := get(t, srv, "/healthz", &hz); resp.StatusCode != http.StatusOK || hz.Status != "ok" {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, hz)
	}
	var rz readyzResponse
	if resp := get(t, srv, "/readyz", &rz); resp.StatusCode != http.StatusOK || !rz.Ready {
		t.Fatalf("readyz = %d %+v", resp.StatusCode, rz)
	}
}

func TestReadyzFlipsOnBrokenWAL(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(faultfs.OS())
	e, _, err := engine.Open(dir, engine.Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	if err := e.AddRows("R", [][]values.Value{{1, 1}}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(srv.Close)
	var rz readyzResponse
	if resp := get(t, srv, "/readyz", &rz); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy readyz = %d", resp.StatusCode)
	}

	// Break the WAL: the append's payload write tears AND its rollback
	// truncate fails.
	inj.Inject(faultfs.Fault{Op: faultfs.OpWrite, Nth: 2, Mode: faultfs.ModeShortWrite})
	inj.Inject(faultfs.Fault{Op: faultfs.OpTruncate, Nth: 1, Mode: faultfs.ModeFail})
	if err := e.AddRows("R", [][]values.Value{{2, 2}}); err == nil {
		t.Fatal("write under double fault succeeded")
	}
	resp := get(t, srv, "/readyz", &rz)
	if resp.StatusCode != http.StatusServiceUnavailable || rz.Ready {
		t.Fatalf("broken-WAL readyz = %d %+v, want 503 not-ready", resp.StatusCode, rz)
	}
	if len(rz.Reasons) == 0 || !strings.Contains(rz.Reasons[0], "wal") {
		t.Fatalf("readyz reasons = %v, want a WAL reason", rz.Reasons)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("not-ready readyz without Retry-After")
	}
	// Liveness is unaffected: the process serves, it is just not ready.
	var hz healthzResponse
	if r := get(t, srv, "/healthz", &hz); r.StatusCode != http.StatusOK {
		t.Fatalf("healthz on degraded server = %d", r.StatusCode)
	}
}

func TestReadyzFlipsOnUnwritableSnapshotDir(t *testing.T) {
	// Point SnapshotDir at a regular file: CreateTemp inside it fails
	// for any uid (a chmod-based check would pass for root).
	dir := t.TempDir()
	bogus := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(bogus, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, _ := resilServer(t, engine.Options{}, Config{SnapshotDir: bogus})
	var rz readyzResponse
	resp := get(t, srv, "/readyz", &rz)
	if resp.StatusCode != http.StatusServiceUnavailable || rz.Ready {
		t.Fatalf("readyz with unwritable snapshot dir = %d %+v", resp.StatusCode, rz)
	}
	found := false
	for _, reason := range rz.Reasons {
		if strings.Contains(reason, "snapshot dir") {
			found = true
		}
	}
	if !found {
		t.Fatalf("readyz reasons = %v, want a snapshot-dir reason", rz.Reasons)
	}
}

func TestV1WriteBodyLimit413(t *testing.T) {
	srv, _ := resilServer(t, engine.Options{}, Config{MaxBodyBytes: 1 << 10})
	big := writeRequest{Writes: []writeEntry{{Relation: "R"}}}
	for i := 0; i < 500; i++ {
		big.Writes[0].Insert = append(big.Writes[0].Insert, []values.Value{values.Value(i), values.Value(i)})
	}
	if resp := postRaw(t, srv, "/v1/write", big); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized /v1/write: status %d, want 413", resp.StatusCode)
	}
	// The same limit guards the legacy bulk-load endpoint.
	rows := make([][]values.Value, 500)
	for i := range rows {
		rows[i] = []values.Value{values.Value(i), values.Value(i)}
	}
	if resp := postRaw(t, srv, "/load", loadRequest{Relation: "R", Rows: rows}); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized /load: status %d, want 413", resp.StatusCode)
	}
	// An in-budget write still lands.
	var wr writeResponse
	post(t, srv, "/v1/write", writeRequest{Writes: []writeEntry{
		{Relation: "R", Insert: [][]values.Value{{500, 500}}},
	}}, &wr)
	if wr.Inserted != 1 {
		t.Fatalf("small write after 413s: %+v", wr)
	}
}
