package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"rankedaccess/internal/engine"
	"rankedaccess/internal/values"
	"rankedaccess/internal/workload"
)

// v1Server boots a handler over a generated two-path instance.
func v1Server(t *testing.T, n int, seed int64) (*httptest.Server, *engine.Engine) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	_, in := workload.TwoPath(rng, n, n/8, 0.3)
	e := engine.New(in, engine.Options{})
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(srv.Close)
	return srv, e
}

// register posts a v1 registration and fails the test on a non-2xx.
func register(t *testing.T, srv *httptest.Server, name, query, order string) queryInfo {
	t.Helper()
	var info queryInfo
	resp := post(t, srv, "/v1/queries", registerRequest{
		Name:        name,
		specPayload: specPayload{Query: query, Order: order},
	}, &info)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register %s: status %d", name, resp.StatusCode)
	}
	return info
}

func TestV1RegisterProbeLifecycle(t *testing.T) {
	srv, e := v1Server(t, 512, 42)
	info := register(t, srv, "by_xyz", twoPath, "x, y, z")
	if info.Total == 0 || !info.Tractable || info.Mode != string(engine.ModeLayeredLex) {
		t.Fatalf("registration info = %+v", info)
	}

	// Probing by name matches the engine directly.
	h, err := e.Prepare(engine.Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	ks := []int64{0, info.Total / 2, info.Total - 1}
	var acc accessResponse
	post(t, srv, "/v1/queries/by_xyz/access", v1AccessRequest{Ks: ks}, &acc)
	for i, k := range ks {
		a, err := h.Access(k)
		if err != nil {
			t.Fatal(err)
		}
		want := h.HeadTuple(a)
		got := acc.Answers[i].Tuple
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("k=%d: %v, want %v", k, got, want)
		}
	}

	// Range by name equals the legacy /range.
	var v1r, legacy rangeResponse
	post(t, srv, "/v1/queries/by_xyz/range", v1RangeRequest{K0: 5, K1: 25}, &v1r)
	post(t, srv, "/range", rangeRequest{
		specPayload: specPayload{Query: twoPath, Order: "x, y, z"}, K0: 5, K1: 25,
	}, &legacy)
	if fmt.Sprint(v1r.Tuples) != fmt.Sprint(legacy.Tuples) {
		t.Fatal("v1 range diverges from legacy range")
	}

	// Count and classify by name.
	var cnt countResponse
	post(t, srv, "/v1/queries/by_xyz/count", struct{}{}, &cnt)
	if cnt.Count != info.Total {
		t.Fatalf("count = %d, want %d", cnt.Count, info.Total)
	}
	var cls classifyResponse
	post(t, srv, "/v1/queries/by_xyz/classify", v1ClassifyRequest{}, &cls)
	if !cls.Tractable {
		t.Fatalf("classify = %+v", cls)
	}

	// Select by name agrees with access.
	var sel selectResponse
	post(t, srv, "/v1/queries/by_xyz/select", v1SelectRequest{K: 3}, &sel)
	if fmt.Sprint(sel.Tuple) != fmt.Sprint(acc.Answers[0].Tuple) && sel.K != 3 {
		t.Fatalf("select = %+v", sel)
	}

	// List shows the registration; eviction removes it.
	var list listResponse
	get(t, srv, "/v1/queries", &list)
	if len(list.Queries) != 1 || list.Queries[0].Name != "by_xyz" {
		t.Fatalf("list = %+v", list)
	}
	del(t, srv, "/v1/queries/by_xyz", http.StatusNoContent)
	if resp := postRaw(t, srv, "/v1/queries/by_xyz/access", v1AccessRequest{Ks: []int64{0}}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("access after evict: status %d, want 404", resp.StatusCode)
	}
}

func get(t *testing.T, srv *httptest.Server, path string, into any) *http.Response {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("%s: decoding response: %v", path, err)
		}
	}
	return resp
}

func del(t *testing.T, srv *httptest.Server, path string, wantStatus int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, srv.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("DELETE %s: status %d, want %d", path, resp.StatusCode, wantStatus)
	}
}

// postRaw posts without decoding, for status-code checks.
func postRaw(t *testing.T, srv *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestV1ErrorStatusCodes pins the sentinel → status mapping of the v1
// API: 404 unknown name, 416 out-of-range, 422 strict-intractable.
func TestV1ErrorStatusCodes(t *testing.T) {
	srv, e := v1Server(t, 256, 43)
	info := register(t, srv, "q", twoPath, "x, y, z")

	if resp := postRaw(t, srv, "/v1/queries/ghost/access", v1AccessRequest{Ks: []int64{0}}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown name: %d, want 404", resp.StatusCode)
	}
	if resp := postRaw(t, srv, "/v1/queries/q/range", v1RangeRequest{K0: 0, K1: info.Total + 10}); resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("oob range: %d, want 416", resp.StatusCode)
	}
	if resp := postRaw(t, srv, "/v1/queries/q/cursor", cursorRequest{Start: info.Total + 1}); resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("oob cursor start: %d, want 416", resp.StatusCode)
	}
	if resp := postRaw(t, srv, "/v1/queries/q/select", v1SelectRequest{K: info.Total + 7}); resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("oob select: %d, want 416", resp.StatusCode)
	}

	// Strict registration of the canonical intractable order is 422 and
	// leaves nothing registered.
	resp := postRaw(t, srv, "/v1/queries", registerRequest{
		Name:        "hard",
		specPayload: specPayload{Query: twoPath, Order: "x, z, y"},
		Strict:      true,
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("strict intractable: %d, want 422", resp.StatusCode)
	}
	if resp := postRaw(t, srv, "/v1/queries/hard/access", v1AccessRequest{Ks: []int64{0}}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("strict reject must not register: %d, want 404", resp.StatusCode)
	}
	// A rejected strict re-registration of an EXISTING name must leave
	// the existing registration serving.
	if resp := postRaw(t, srv, "/v1/queries", registerRequest{
		Name:        "q",
		specPayload: specPayload{Query: twoPath, Order: "x, z, y"},
		Strict:      true,
	}); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("strict intractable re-register: %d, want 422", resp.StatusCode)
	}
	var stillThere accessResponse
	if resp := post(t, srv, "/v1/queries/q/access", v1AccessRequest{Ks: []int64{0}}, &stillThere); resp.StatusCode != http.StatusOK {
		t.Fatalf("existing registration lost after strict rejection: %d", resp.StatusCode)
	}
	if stillThere.Mode != string(engine.ModeLayeredLex) {
		t.Fatalf("existing registration replaced: %+v", stillThere)
	}
	// Non-strict registration of the same order succeeds as
	// materialized fallback.
	var hardInfo queryInfo
	post(t, srv, "/v1/queries", registerRequest{
		Name:        "hard",
		specPayload: specPayload{Query: twoPath, Order: "x, z, y"},
	}, &hardInfo)
	if hardInfo.Tractable || hardInfo.Mode != string(engine.ModeMaterialized) {
		t.Fatalf("non-strict fallback info = %+v", hardInfo)
	}

	// An open cursor is pinned to its epoch: it keeps serving its
	// pre-mutation result set after the instance mutates.
	var cr cursorResponse
	post(t, srv, "/v1/queries/q/cursor", cursorRequest{}, &cr)
	if err := e.AddRows("R", [][]values.Value{{999, 999}}); err != nil {
		t.Fatal(err)
	}
	var nout cursorNextResponse
	nresp := get(t, srv, "/v1/cursors/"+cr.Cursor+"/next?n=4", &nout)
	if nresp.StatusCode != http.StatusOK {
		t.Fatalf("cursor across mutation: %d, want 200", nresp.StatusCode)
	}
	if len(nout.Tuples) != 4 {
		t.Fatalf("cursor across mutation: %d tuples, want 4", len(nout.Tuples))
	}
	if nresp := get(t, srv, "/v1/cursors/nope/next", nil); nresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown cursor: %d, want 404", nresp.StatusCode)
	}
}

// cursorNext pages one JSON batch.
func cursorNext(t *testing.T, srv *httptest.Server, id string, n int) cursorNextResponse {
	t.Helper()
	var out cursorNextResponse
	resp := get(t, srv, "/v1/cursors/"+id+"/next?n="+strconv.Itoa(n), &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("next: status %d", resp.StatusCode)
	}
	return out
}

// TestCursorPagingMatchesBatchAccess pages a cursor to exhaustion and
// checks the concatenation equals one /v1 access batch over all ks.
func TestCursorPagingMatchesBatchAccess(t *testing.T) {
	srv, _ := v1Server(t, 300, 44)
	info := register(t, srv, "page", twoPath, "x, y desc, z")

	var cr cursorResponse
	if resp := post(t, srv, "/v1/queries/page/cursor", cursorRequest{}, &cr); resp.StatusCode != http.StatusCreated {
		t.Fatalf("cursor create: %d", resp.StatusCode)
	}
	if cr.Total != info.Total || cr.Pos != 0 {
		t.Fatalf("cursor = %+v", cr)
	}
	var paged [][]values.Value
	for {
		out := cursorNext(t, srv, cr.Cursor, 7)
		paged = append(paged, out.Tuples...)
		if out.Done {
			if out.Pos != info.Total {
				t.Fatalf("done at pos %d, want %d", out.Pos, info.Total)
			}
			break
		}
	}
	if int64(len(paged)) != info.Total {
		t.Fatalf("paged %d tuples, want %d", len(paged), info.Total)
	}

	ks := make([]int64, info.Total)
	for i := range ks {
		ks[i] = int64(i)
	}
	var batch accessResponse
	post(t, srv, "/v1/queries/page/access", v1AccessRequest{Ks: ks}, &batch)
	for i := range ks {
		if fmt.Sprint(paged[i]) != fmt.Sprint(batch.Answers[i].Tuple) {
			t.Fatalf("row %d: paged %v, batch %v", i, paged[i], batch.Answers[i].Tuple)
		}
	}

	del(t, srv, "/v1/cursors/"+cr.Cursor, http.StatusNoContent)
	if resp := get(t, srv, "/v1/cursors/"+cr.Cursor+"/next", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("closed cursor next: %d, want 404", resp.StatusCode)
	}
}

// streamNDJSONRows fetches one NDJSON window and decodes every line
// with encoding/json (the "byte-decoded" check: the stream is plain
// JSON rows).
func streamNDJSONRows(t *testing.T, srv *httptest.Server, id string, n int) ([][]values.Value, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/cursors/"+id+"/next?n="+strconv.Itoa(n), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var rows [][]values.Value
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var row []values.Value
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("stream line %q: %v", sc.Text(), err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return rows, resp.Header
}

// TestNDJSONStreamEqualsAccessBatch is the satellite guard: the NDJSON
// stream, byte-decoded line by line, must equal the batched
// /v1/.../access answers for the same window.
func TestNDJSONStreamEqualsAccessBatch(t *testing.T) {
	srv, _ := v1Server(t, 400, 45)
	info := register(t, srv, "s", twoPath, "x, y, z")
	if info.Total < 50 {
		t.Fatalf("instance too small: %d answers", info.Total)
	}

	var cr cursorResponse
	post(t, srv, "/v1/queries/s/cursor", cursorRequest{Start: 10}, &cr)
	rows, hdr := streamNDJSONRows(t, srv, cr.Cursor, 30)
	if len(rows) != 30 {
		t.Fatalf("streamed %d rows, want 30", len(rows))
	}
	if pos := hdr.Get("X-Cursor-Pos"); pos != "40" {
		t.Fatalf("X-Cursor-Pos = %q, want 40", pos)
	}
	if done := hdr.Get("X-Cursor-Done"); done != "false" {
		t.Fatalf("X-Cursor-Done = %q, want false", done)
	}

	ks := make([]int64, 30)
	for i := range ks {
		ks[i] = int64(10 + i)
	}
	var batch accessResponse
	post(t, srv, "/v1/queries/s/access", v1AccessRequest{Ks: ks}, &batch)
	for i := range ks {
		if fmt.Sprint(rows[i]) != fmt.Sprint(batch.Answers[i].Tuple) {
			t.Fatalf("row %d: stream %v, batch %v", i, rows[i], batch.Answers[i].Tuple)
		}
	}

	// The stream advanced the server cursor: the next JSON page starts
	// where the stream ended.
	out := cursorNext(t, srv, cr.Cursor, 1)
	if out.Pos != 41 {
		t.Fatalf("pos after stream+1 = %d, want 41", out.Pos)
	}

	// Draining the remainder ends exactly at total with done=true.
	rest, hdr := streamNDJSONRows(t, srv, cr.Cursor, int(info.Total))
	if int64(len(rest)) != info.Total-41 {
		t.Fatalf("drained %d rows, want %d", len(rest), info.Total-41)
	}
	if done := hdr.Get("X-Cursor-Done"); done != "true" {
		t.Fatalf("X-Cursor-Done after drain = %q, want true", done)
	}
}

// TestV1ShardedCursorEquivalence streams the same window sharded
// (P ∈ {1, 4}) and unsharded through HTTP cursors and requires
// identical bytes.
func TestV1ShardedCursorEquivalence(t *testing.T) {
	srv, _ := v1Server(t, 400, 46)
	register(t, srv, "plain", twoPath, "x, y, z")
	var plainCr cursorResponse
	post(t, srv, "/v1/queries/plain/cursor", cursorRequest{}, &plainCr)
	want, _ := streamNDJSONRows(t, srv, plainCr.Cursor, int(plainCr.Total))

	for _, p := range []int{1, 4} {
		name := fmt.Sprintf("shard%d", p)
		var info queryInfo
		post(t, srv, "/v1/queries", registerRequest{
			Name:        name,
			specPayload: specPayload{Query: twoPath, Order: "x, y, z", Shards: p},
		}, &info)
		var cr cursorResponse
		post(t, srv, "/v1/queries/"+name+"/cursor", cursorRequest{}, &cr)
		got, _ := streamNDJSONRows(t, srv, cr.Cursor, int(cr.Total))
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("P=%d stream diverges from unsharded", p)
		}
	}
}

// TestConcurrentHTTPCursors opens many cursors on one registration and
// drains them from concurrent goroutines with mixed JSON/NDJSON pages
// (run with -race).
func TestConcurrentHTTPCursors(t *testing.T) {
	srv, _ := v1Server(t, 300, 47)
	info := register(t, srv, "conc", twoPath, "x, y, z")

	var refCr cursorResponse
	post(t, srv, "/v1/queries/conc/cursor", cursorRequest{}, &refCr)
	want, _ := streamNDJSONRows(t, srv, refCr.Cursor, int(info.Total))

	const workers = 6
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var cr cursorResponse
			post(t, srv, "/v1/queries/conc/cursor", cursorRequest{}, &cr)
			var rows [][]values.Value
			if g%2 == 0 {
				for {
					out := cursorNext(t, srv, cr.Cursor, 11)
					rows = append(rows, out.Tuples...)
					if out.Done {
						break
					}
				}
			} else {
				rows, _ = streamNDJSONRows(t, srv, cr.Cursor, int(info.Total))
			}
			if fmt.Sprint(rows) != fmt.Sprint(want) {
				t.Errorf("goroutine %d scan diverged", g)
			}
		}(g)
	}
	wg.Wait()
}

// TestStatsRegistryCounters is the acceptance check: registered-name
// probes bump registry_hits (zero re-parsing), visible in /stats.
func TestStatsRegistryCounters(t *testing.T) {
	srv, _ := v1Server(t, 128, 48)
	register(t, srv, "counted", twoPath, "x, y, z")

	var before statsResponse
	get(t, srv, "/stats", &before)
	if before.Prepared != 1 {
		t.Fatalf("prepared = %d, want 1", before.Prepared)
	}
	for i := 0; i < 5; i++ {
		post(t, srv, "/v1/queries/counted/access", v1AccessRequest{Ks: []int64{0}}, nil)
	}
	var after statsResponse
	get(t, srv, "/stats", &after)
	if after.RegistryHits < before.RegistryHits+5 {
		t.Fatalf("registry_hits %d -> %d, want +5", before.RegistryHits, after.RegistryHits)
	}

	var cr cursorResponse
	post(t, srv, "/v1/queries/counted/cursor", cursorRequest{}, &cr)
	get(t, srv, "/stats", &after)
	if after.OpenCursors != 1 {
		t.Fatalf("open_cursors = %d, want 1", after.OpenCursors)
	}
	del(t, srv, "/v1/cursors/"+cr.Cursor, http.StatusNoContent)
	get(t, srv, "/stats", &after)
	if after.OpenCursors != 0 {
		t.Fatalf("open_cursors after close = %d, want 0", after.OpenCursors)
	}
}
