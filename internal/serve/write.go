// write.go implements the batch mutation endpoint of the v1 surface.
//
//	POST /v1/write  {"writes": [{"relation": "R",
//	                             "insert": [[1,2], ...],
//	                             "delete": [[3,4], ...]}, ...]}
//
// One request is one atomic engine batch: every row lands (or none
// does), the whole group is durably WAL-appended before it applies, and
// the response carries the single new version the batch published.
// Prepared structures over untouched relations republish at that
// version without rebuilding; structures over written relations absorb
// the batch as a delta overlay when eligible (see /stats delta_epochs
// vs delta_rebuilds).
package serve

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"rankedaccess/internal/delta"
	"rankedaccess/internal/values"
)

// writeEntry is one relation's rows in a write batch. Deletes apply
// after inserts of the same entry (they are separate mutations in one
// atomic batch; deleting a row the same batch inserted removes it).
type writeEntry struct {
	Relation string           `json:"relation"`
	Insert   [][]values.Value `json:"insert,omitempty"`
	Delete   [][]values.Value `json:"delete,omitempty"`
}

type writeRequest struct {
	Writes []writeEntry `json:"writes"`
}

type writeResponse struct {
	// Version is the engine version the batch published (the current
	// version when the batch was empty).
	Version uint64 `json:"version"`
	// Inserted and Deleted count rows requested, not rows that changed
	// the instance (deletes of absent rows are idempotent no-ops).
	Inserted int `json:"inserted"`
	Deleted  int `json:"deleted"`
}

func (s *server) handleWrite(w http.ResponseWriter, r *http.Request) {
	// A degraded engine (broken WAL, or an overlay backlog at the hard
	// rebuild threshold) sheds writes so it can catch up; reads keep
	// flowing from published epochs meanwhile.
	if s.shedWrite(w, r) {
		return
	}
	var req writeRequest
	if !s.decode(w, r, &req) {
		return
	}
	var muts []delta.Mutation
	inserted, deleted := 0, 0
	for _, ent := range req.Writes {
		if ent.Relation == "" {
			fail(w, http.StatusBadRequest, errors.New("serve: write entry without a relation"))
			return
		}
		ins, err := flatMutation(delta.OpInsert, ent.Relation, ent.Insert)
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		del, err := flatMutation(delta.OpDelete, ent.Relation, ent.Delete)
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		if ins != nil {
			muts = append(muts, *ins)
			inserted += len(ent.Insert)
		}
		if del != nil {
			muts = append(muts, *del)
			deleted += len(ent.Delete)
		}
	}
	if len(muts) == 0 {
		// An empty batch publishes nothing: echo the current version.
		reply(w, writeResponse{Version: s.e.Version()})
		return
	}
	v, err := s.e.ApplyBatchCtx(r.Context(), muts)
	if err != nil {
		// A broken WAL fails every write until repair: that is server
		// overload/unavailability, not a bad request.
		if errors.Is(err, delta.ErrWALBroken) {
			setRetryAfter(w, time.Second)
			fail(w, http.StatusServiceUnavailable, err)
			return
		}
		fail(w, http.StatusBadRequest, err)
		return
	}
	reply(w, writeResponse{Version: v, Inserted: inserted, Deleted: deleted})
}

// flatMutation flattens row slices into one mutation record, checking
// the rows agree on one arity (nil for an empty set).
func flatMutation(op delta.Op, rel string, rows [][]values.Value) (*delta.Mutation, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	arity := len(rows[0])
	if arity == 0 {
		return nil, fmt.Errorf("serve: %s %s: empty row", op, rel)
	}
	flat := make([]values.Value, 0, len(rows)*arity)
	for _, row := range rows {
		if len(row) != arity {
			return nil, fmt.Errorf("serve: %s %s: rows of arity %d and %d in one entry", op, rel, arity, len(row))
		}
		flat = append(flat, row...)
	}
	return &delta.Mutation{Op: op, Rel: rel, Arity: arity, Rows: flat}, nil
}
