// resilience.go is the serve layer's overload machinery: the admission
// pipeline every request passes through (per-client rate limit →
// per-request deadline → global concurrency gate), plus the degraded
// read/write policy applied while the engine is behind.
//
// The shedding contract is uniform: a shed request gets a structured
// JSON error, an honest status (429 when the client is out of budget,
// 503 when the server is), and a Retry-After telling it when trying
// again is worth the bytes. Monitoring endpoints (/stats, /healthz,
// /readyz) bypass admission entirely — an operator must be able to see
// an overloaded server.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"time"

	"rankedaccess/internal/engine"
	"rankedaccess/internal/reqid"
)

// healthTTL bounds how often request paths re-sample engine health.
// Health() scans the structure cache under a lock; overload is exactly
// when thousands of concurrent requests would otherwise all pay it.
const healthTTL = 100 * time.Millisecond

var (
	errRateLimited = errors.New("serve: client request rate over budget")
	errSaturated   = errors.New("serve: server saturated; wait queue full")
	errDegraded    = errors.New("serve: engine degraded; writes shed until it catches up")
)

// admit wraps a handler with the full admission pipeline; admitStream
// is admit without the per-request deadline (a healthy NDJSON stream
// may legitimately outlive any one-request budget — stalled streams
// are bounded by per-chunk write deadlines instead, see streamNDJSON).
func (s *server) admit(h http.HandlerFunc) http.HandlerFunc       { return s.admitAs(h, false) }
func (s *server) admitStream(h http.HandlerFunc) http.HandlerFunc { return s.admitAs(h, true) }

func (s *server) admitAs(h http.HandlerFunc, stream bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.lim != nil {
			if ok, retry := s.lim.Allow(clientKey(r), time.Now()); !ok {
				s.shed429.Add(1)
				shed(w, http.StatusTooManyRequests, retry, errRateLimited)
				return
			}
		}
		if s.cfg.RequestTimeout > 0 && !stream {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		if s.gate != nil {
			release, err := s.gate.Enter(r.Context())
			if err != nil {
				s.shed503.Add(1)
				shed(w, http.StatusServiceUnavailable, time.Second, errSaturated)
				return
			}
			defer release()
		}
		h(w, r)
	}
}

// clientKey identifies a client for rate limiting: the remote host
// without the (per-connection, meaningless) port.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// shed writes a shed response: status, Retry-After, structured body.
func shed(w http.ResponseWriter, status int, retry time.Duration, err error) {
	setRetryAfter(w, retry)
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// setRetryAfter renders a Retry-After header in whole seconds, rounded
// up so the client never retries early.
func setRetryAfter(w http.ResponseWriter, retry time.Duration) {
	secs := int64((retry + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
}

// health returns a recent engine health sample, re-sampling at most
// every healthTTL.
func (s *server) health() engine.Health {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	if s.healthAt.IsZero() || time.Since(s.healthAt) > healthTTL {
		s.healthC = s.e.Health()
		s.healthAt = time.Now()
	}
	return s.healthC
}

// acquireRead resolves the handle for a read. On a healthy engine it is
// exactly AcquireCtx (re-preparing to the current version if needed).
// On a degraded engine — WAL broken, or an overlay backlog at the hard
// rebuild threshold — it serves the registration's last published
// epoch instead: every handle is an immutable, internally consistent
// snapshot, so a slightly stale answer beats convoying every reader
// behind a synchronous rebuild.
func (s *server) acquireRead(ctx context.Context, pq *engine.PreparedQuery) (*engine.Handle, error) {
	if s.health().Degraded() {
		if h, fresh := pq.Current(); h != nil {
			if !fresh {
				s.degradedReads.Add(1)
				if s.reqLog != nil {
					s.reqLog.LogAttrs(ctx, slog.LevelWarn, "serve: degraded read from stale epoch",
						slog.String("request_id", reqid.From(ctx)),
						slog.Uint64("epoch", h.Version()))
				}
			}
			return h, nil
		}
	}
	return pq.AcquireCtx(ctx)
}

// shedWrite reports (and records) whether mutations should currently
// be refused, writing the 503 if so. Shedding writes while the engine
// is behind is what lets it catch up.
func (s *server) shedWrite(w http.ResponseWriter, r *http.Request) bool {
	if !s.health().Degraded() {
		return false
	}
	s.writeSheds.Add(1)
	if s.reqLog != nil {
		s.reqLog.LogAttrs(r.Context(), slog.LevelWarn, "serve: write shed while degraded",
			slog.String("request_id", reqid.From(r.Context())),
			slog.String("client", clientKey(r)))
	}
	shed(w, http.StatusServiceUnavailable, time.Second, errDegraded)
	return true
}
