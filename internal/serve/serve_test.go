package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"rankedaccess/internal/database"
	"rankedaccess/internal/engine"
	"rankedaccess/internal/order"
	"rankedaccess/internal/values"
	"rankedaccess/internal/workload"
)

const twoPath = "Q(x, y, z) :- R(x, y), S(y, z)"

func post(t *testing.T, srv *httptest.Server, path string, body any, into any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("%s: decoding response: %v", path, err)
		}
	}
	return resp
}

// TestAccessEndToEnd drives POST /access against a generated instance
// and cross-checks every answer with the library.
func TestAccessEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	q, in := workload.TwoPath(rng, 512, 64, 0.3)
	e := engine.New(in, engine.Options{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	// Golden structure straight from the engine.
	h, err := e.Prepare(engine.Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	total := h.Total()
	if total == 0 {
		t.Fatal("empty join")
	}

	ks := []int64{0, total / 2, total - 1, total + 5}
	var resp accessResponse
	post(t, srv, "/access", accessRequest{
		specPayload: specPayload{Query: twoPath, Order: "x, y, z"},
		Ks:          ks,
	}, &resp)

	if resp.Total != total || !resp.Tractable || resp.Mode != string(engine.ModeLayeredLex) {
		t.Fatalf("response header = %+v, want total %d tractable layered-lex", resp, total)
	}
	for i, k := range ks[:3] {
		a, err := h.Access(k)
		if err != nil {
			t.Fatal(err)
		}
		want := h.HeadTuple(a)
		got := resp.Answers[i].Tuple
		if len(got) != len(want) {
			t.Fatalf("k=%d: tuple %v, want %v", k, got, want)
		}
		for p := range want {
			if got[p] != want[p] {
				t.Fatalf("k=%d: tuple %v, want %v", k, got, want)
			}
		}
	}
	if resp.Answers[3].Error != "out of bound" {
		t.Fatalf("out-of-range probe: %+v", resp.Answers[3])
	}
	_ = q
}

func TestLoadThenQueryLifecycle(t *testing.T) {
	e := engine.New(database.NewInstance(), engine.Options{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	var lr loadResponse
	post(t, srv, "/load", loadRequest{Relation: "R", Rows: [][]values.Value{{1, 5}, {1, 2}, {6, 2}}}, &lr)
	if lr.Loaded != 3 || lr.Version != 1 {
		t.Fatalf("load R = %+v", lr)
	}
	post(t, srv, "/load", loadRequest{Relation: "S", Rows: [][]values.Value{{5, 3}, {5, 4}, {5, 6}, {2, 5}}}, &lr)
	if lr.Version != 2 {
		t.Fatalf("load S = %+v", lr)
	}

	var cr countResponse
	post(t, srv, "/count", countRequest{Query: twoPath}, &cr)
	if cr.Count != 5 {
		t.Fatalf("count = %d, want 5", cr.Count)
	}

	var ar accessResponse
	post(t, srv, "/access", accessRequest{
		specPayload: specPayload{Query: twoPath, Order: "x, y, z"},
		Ks:          []int64{0},
	}, &ar)
	if ar.Total != 5 || len(ar.Answers) != 1 || ar.Answers[0].Error != "" {
		t.Fatalf("access = %+v", ar)
	}
	first := ar.Answers[0].Tuple

	var sr selectResponse
	post(t, srv, "/select", selectRequest{
		specPayload: specPayload{Query: twoPath, Order: "x, y, z"},
		K:           0,
	}, &sr)
	for p := range first {
		if sr.Tuple[p] != first[p] {
			t.Fatalf("select %v != access %v", sr.Tuple, first)
		}
	}

	// Loading more rows publishes a new version: the same access now
	// sees the new answers (served by a delta overlay, not a rebuild).
	post(t, srv, "/load", loadRequest{Relation: "R", Rows: [][]values.Value{{7, 5}}}, &lr)
	post(t, srv, "/access", accessRequest{
		specPayload: specPayload{Query: twoPath, Order: "x, y, z"},
		Ks:          []int64{0},
	}, &ar)
	if ar.Total != 8 {
		t.Fatalf("total after load = %d, want 8", ar.Total)
	}

	var st statsResponse
	resp, err := srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Tuples != 8 || st.Version != 3 || st.Misses < 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.WALBatches != 3 || st.DeltaEpochs < 1 {
		t.Fatalf("write-path stats = %+v", st)
	}
}

func TestClassifyAndSumEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	_, in := workload.TwoPath(rng, 128, 16, 0.3)
	e := engine.New(in, engine.Options{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	var cl classifyResponse
	post(t, srv, "/classify", classifyRequest{
		specPayload: specPayload{Query: twoPath, Order: "x, z, y"},
		Problem:     engine.ProblemDirectAccessLex,
	}, &cl)
	if cl.Tractable {
		t.Fatalf("⟨x,z,y⟩ classified tractable: %+v", cl)
	}
	if len(cl.Trio) == 0 {
		t.Fatalf("intractable verdict lacks a disruptive-trio certificate: %+v", cl)
	}

	// SUM access over a full single-atom query is tractable.
	var ar accessResponse
	post(t, srv, "/access", accessRequest{
		specPayload: specPayload{Query: "Q(x, y) :- R(x, y)", SumBy: []string{"x", "y"}},
		Ks:          []int64{0, 1},
	}, &ar)
	if ar.Mode != string(engine.ModeSum) || !ar.Tractable {
		t.Fatalf("sum access = %+v", ar)
	}
	if len(ar.Answers) != 2 || ar.Answers[0].Error != "" || ar.Answers[1].Error != "" {
		t.Fatalf("sum answers = %+v", ar.Answers)
	}
	w0 := ar.Answers[0].Tuple[0] + ar.Answers[0].Tuple[1]
	w1 := ar.Answers[1].Tuple[0] + ar.Answers[1].Tuple[1]
	if w0 > w1 {
		t.Fatalf("sum order violated: %d then %d", w0, w1)
	}
	_ = order.Lex{}
}

func TestBadRequests(t *testing.T) {
	e := engine.New(database.NewInstance(), engine.Options{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	// Establish T with arity 2 so the arity-mismatch-with-existing case
	// below is exercised.
	if resp := post(t, srv, "/load", loadRequest{Relation: "T", Rows: [][]values.Value{{1, 2}}}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("seeding T: status %d", resp.StatusCode)
	}

	cases := []struct {
		path string
		body any
	}{
		{"/access", accessRequest{specPayload: specPayload{Query: "not a query"}}},
		{"/access", accessRequest{specPayload: specPayload{Query: twoPath, Order: "nosuchvar"}}},
		{"/count", countRequest{Query: ""}},
		{"/load", loadRequest{Relation: ""}},
		{"/load", loadRequest{Relation: "R", Rows: [][]values.Value{{1}, {1, 2}}}},
		{"/load", loadRequest{Relation: "T", Rows: [][]values.Value{{1, 2, 3}}}}, // arity clash with existing T

		{"/classify", classifyRequest{specPayload: specPayload{Query: twoPath}, Problem: "nonsense"}},
	}
	for _, c := range cases {
		resp := post(t, srv, c.path, c.body, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s %+v: status %d, want 400", c.path, c.body, resp.StatusCode)
		}
	}

	// Wrong method.
	resp, err := srv.Client().Get(srv.URL + "/access")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /access: status %d, want 405", resp.StatusCode)
	}
}

// TestRangeEndpoint drives POST /range and cross-checks the window
// against per-index access.
func TestRangeEndpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	_, in := workload.TwoPath(rng, 512, 64, 0.3)
	e := engine.New(in, engine.Options{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	h, err := e.Prepare(engine.Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	total := h.Total()
	if total < 8 {
		t.Fatal("workload too small")
	}
	k0, k1 := total/4, total/4+5

	var rr rangeResponse
	post(t, srv, "/range", rangeRequest{
		specPayload: specPayload{Query: twoPath, Order: "x, y, z"},
		K0:          k0, K1: k1,
	}, &rr)
	if rr.Total != total || rr.K0 != k0 || len(rr.Tuples) != int(k1-k0) {
		t.Fatalf("range response: %+v", rr)
	}
	for i, tu := range rr.Tuples {
		a, err := h.Access(k0 + int64(i))
		if err != nil {
			t.Fatal(err)
		}
		want := h.HeadTuple(a)
		if len(tu) != len(want) {
			t.Fatalf("tuple %d: %v, want %v", i, tu, want)
		}
		for j := range want {
			if tu[j] != want[j] {
				t.Fatalf("tuple %d: %v, want %v", i, tu, want)
			}
		}
	}

	// Out-of-bound window → 416.
	resp := post(t, srv, "/range", rangeRequest{
		specPayload: specPayload{Query: twoPath, Order: "x, y, z"},
		K0:          total - 1, K1: total + 5,
	}, nil)
	if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("out-of-bound range: status %d, want 416", resp.StatusCode)
	}

	// Oversized window → 400.
	resp = post(t, srv, "/range", rangeRequest{
		specPayload: specPayload{Query: twoPath, Order: "x, y, z"},
		K0:          0, K1: maxRange + 1,
	}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized range: status %d, want 400", resp.StatusCode)
	}
}
