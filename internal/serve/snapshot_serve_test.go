package serve

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"rankedaccess/internal/engine"
	"rankedaccess/internal/snapshot"
	"rankedaccess/internal/values"
	"rankedaccess/internal/workload"
)

// snapServer boots a handler with the snapshot endpoints enabled.
func snapServer(t *testing.T) (*engine.Engine, *httptest.Server, string) {
	t.Helper()
	rng := rand.New(rand.NewSource(33))
	_, in := workload.TwoPath(rng, 512, 64, 0.3)
	e := engine.New(in, engine.Options{})
	dir := t.TempDir()
	srv := httptest.NewServer(NewHandlerWith(e, Config{SnapshotDir: dir}))
	t.Cleanup(srv.Close)
	t.Cleanup(func() { e.Close() })
	return e, srv, dir
}

func TestSnapshotEndpoints(t *testing.T) {
	e, srv, _ := snapServer(t)
	var reg queryInfo
	post(t, srv, "/v1/queries", registerRequest{
		Name:        "snap",
		specPayload: specPayload{Query: twoPath, Order: "x, y, z"},
	}, &reg)
	h, err := e.Prepare(engine.Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := h.AccessRange(nil, 0, min(h.Total(), 64))
	if err != nil {
		t.Fatal(err)
	}

	// Checkpoint.
	var created snapshotCreateResponse
	if resp := post(t, srv, "/v1/snapshots", nil, &created); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	if created.Structures == 0 || created.Registrations != 1 || !snapshot.ValidName(created.Name) {
		t.Fatalf("create response %+v", created)
	}

	// List shows it.
	var listed snapshotListResponse
	get(t, srv, "/v1/snapshots", &listed)
	if len(listed.Snapshots) != 1 || listed.Snapshots[0].Name != created.Name {
		t.Fatalf("list %+v, want the created snapshot", listed)
	}

	// Mutate the instance away from the snapshotted state.
	post(t, srv, "/load", loadRequest{Relation: "R", Rows: [][]values.Value{{1 << 40, 1}}}, nil)

	// Restore brings the snapshotted answers back.
	var restored snapshotRestoreResponse
	if resp := post(t, srv, "/v1/snapshots/"+created.Name+"/restore", nil, &restored); resp.StatusCode != http.StatusOK {
		t.Fatalf("restore status %d", resp.StatusCode)
	}
	if restored.Version <= created.Version {
		t.Fatalf("restore version %d did not move past %d", restored.Version, created.Version)
	}
	h2, err := e.Prepare(engine.Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := h2.AccessRange(nil, 0, min(h2.Total(), 64))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("restored answers differ from the snapshotted ones")
	}

	// The registry came back with the snapshot.
	var info queryInfo
	get(t, srv, "/v1/queries/snap", &info)
	if info.Query != twoPath {
		t.Fatalf("restored registration %+v", info)
	}

	// Stats expose the snapshot counters.
	var st statsResponse
	get(t, srv, "/stats", &st)
	if st.Checkpoints != 1 || st.Restores != 1 || st.WarmStructures == 0 {
		t.Fatalf("stats %+v: want 1 checkpoint, 1 restore, warm structures", st)
	}
}

func TestSnapshotRestoreRejectsBadNames(t *testing.T) {
	_, srv, _ := snapServer(t)
	for _, name := range []string{"%2e%2e%2fetc", "nope.rka", "snapshot-x" + snapshot.Ext} {
		resp, err := srv.Client().Post(srv.URL+"/v1/snapshots/"+name+"/restore", "application/json", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("restore of %q: status %d, want 400", name, resp.StatusCode)
		}
	}
	// A well-formed name that does not exist is 404.
	missing := snapshot.FileName(1, 1)
	resp, err := srv.Client().Post(srv.URL+"/v1/snapshots/"+missing+"/restore", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("restore of missing snapshot: status %d, want 404", resp.StatusCode)
	}
}

func TestSnapshotEndpointsUnmountedWithoutDir(t *testing.T) {
	e := engine.New(nil, engine.Options{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/v1/snapshots", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("snapshots without -snapshot-dir: status %d, want 404", resp.StatusCode)
	}
}
