// ops.go is the operator-only side surface: net/http/pprof plus a
// second mount of the monitoring endpoints, meant for a separate
// loopback/private listener (cmd/serve's -ops-addr), never the public
// serving port. pprof exposes stacks, heap contents, and CPU profiles —
// keeping it off the API mux entirely (rather than behind a flag check
// per request) means no configuration mistake can route it to clients.
package serve

import (
	"net/http"
	"net/http/pprof"
)

// apiHandler is the concrete handler NewHandlerWith returns: the route
// mux plus the server state an ops mux shares.
type apiHandler struct {
	*http.ServeMux
	s *server
}

// NewOpsHandler mounts the operational surface for a handler returned
// by NewHandler/NewHandlerWith: the standard /debug/pprof/* handlers,
// the trace explorer at /debug/traces when the API was configured with
// a Tracer, plus the same /metrics, /healthz, and /readyz the API
// serves, so an operator on the private port never needs the public
// one. Nothing here passes admission or the request middleware — an
// overloaded or misbehaving server is exactly when profiles matter.
func NewOpsHandler(api http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	if ah, ok := api.(apiHandler); ok {
		mux.HandleFunc("GET /metrics", ah.s.handleMetrics)
		mux.HandleFunc("GET /healthz", ah.s.handleHealthz)
		mux.HandleFunc("GET /readyz", ah.s.handleReadyz)
		if t := ah.s.tracer; t != nil {
			mux.Handle("GET /debug/traces", t.Store().Handler())
		}
	}
	return mux
}
