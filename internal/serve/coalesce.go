// coalesce.go implements request coalescing for the hot probe
// endpoints: identical (prepared-query, window) requests in flight at
// once share one probe + encode, and recently produced bodies are
// served straight from a small cache.
//
// Correctness hinges on the key: it embeds the registration generation
// AND the handle's epoch version, so a cached body can never outlive
// its epoch — a write publishes a new version, new requests form new
// keys, and entries for dead epochs simply age out of the LRU. No
// invalidation hook is needed, which is the point of keying by
// immutable epochs instead of mutable names.
package serve

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"rankedaccess/internal/engine"
	"rankedaccess/internal/trace"
)

// defaultCoalesceCache bounds cached response bodies. Entries are hot
// ranked windows (a leaderboard page, a dashboard's top-k); 256 bodies
// of a few KB each is plenty and bounded.
const defaultCoalesceCache = 256

type coalescer struct {
	mu      sync.Mutex
	flights map[string]*coalFlight
	entries map[string]*coalEntry
	seq     uint64
	max     int

	hits   atomic.Uint64
	misses atomic.Uint64
}

// coalFlight is one in-progress fill; joiners block on done and share
// the leader's result.
type coalFlight struct {
	done chan struct{}
	body []byte
	err  error
}

type coalEntry struct {
	body []byte
	seq  uint64 // LRU stamp
}

func newCoalescer(max int) *coalescer {
	if max <= 0 {
		max = defaultCoalesceCache
	}
	return &coalescer{
		flights: make(map[string]*coalFlight),
		entries: make(map[string]*coalEntry),
		max:     max,
	}
}

// do returns the encoded response body for key, invoking fill at most
// once across all concurrent identical requests. Successful bodies are
// cached (LRU) until evicted; errors are shared with the in-flight
// joiners but never cached, so a transient failure does not poison the
// key.
func (c *coalescer) do(ctx context.Context, key string, fill func() ([]byte, error)) ([]byte, error) {
	c.mu.Lock()
	if ent := c.entries[key]; ent != nil {
		c.seq++
		ent.seq = c.seq
		c.mu.Unlock()
		c.hits.Add(1)
		trace.FromContext(ctx).AddEvent("coalesce.hit", trace.Str("kind", "cached"))
		return ent.body, nil
	}
	if fl := c.flights[key]; fl != nil {
		c.mu.Unlock()
		<-fl.done
		c.hits.Add(1)
		trace.FromContext(ctx).AddEvent("coalesce.hit", trace.Str("kind", "joined"))
		return fl.body, fl.err
	}
	fl := &coalFlight{done: make(chan struct{})}
	c.flights[key] = fl
	c.mu.Unlock()

	c.misses.Add(1)
	trace.FromContext(ctx).AddEvent("coalesce.miss")
	fl.body, fl.err = fill()

	c.mu.Lock()
	delete(c.flights, key)
	if fl.err == nil {
		for len(c.entries) >= c.max {
			var oldestKey string
			var oldest uint64
			for k, e := range c.entries {
				if oldestKey == "" || e.seq < oldest {
					oldestKey, oldest = k, e.seq
				}
			}
			delete(c.entries, oldestKey)
		}
		c.seq++
		c.entries[key] = &coalEntry{body: fl.body, seq: c.seq}
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.body, fl.err
}

// coalesceKey builds the identity of one probe window: endpoint,
// registration (name AND generation — a re-registered name must not
// hit the old name's cache), epoch version, then the request's numeric
// parameters.
func coalesceKey(op string, id engine.PreparedID, version uint64, parts ...int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|%d|%d", op, id.Name, id.Gen, version)
	for _, p := range parts {
		fmt.Fprintf(&b, "|%d", p)
	}
	return b.String()
}
