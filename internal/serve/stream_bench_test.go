package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rankedaccess/internal/engine"
	"rankedaccess/internal/workload"
)

// benchServer registers one prepared query over a generated instance.
func benchServer(b *testing.B, n int) (*httptest.Server, int64) {
	b.Helper()
	rng := rand.New(rand.NewSource(77))
	_, in := workload.TwoPath(rng, n, n/8, 0.3)
	e := engine.New(in, engine.Options{})
	srv := httptest.NewServer(NewHandler(e))
	b.Cleanup(srv.Close)
	pq, err := e.Register("bench", engine.Spec{Query: twoPath, Order: "x, y, z"})
	if err != nil {
		b.Fatal(err)
	}
	h, err := pq.Acquire()
	if err != nil {
		b.Fatal(err)
	}
	return srv, h.Total()
}

// BenchmarkNDJSONStream measures end-to-end cursor streaming: one op
// opens a cursor and consumes a 4096-row NDJSON window over real HTTP,
// reporting bytes/s of stream payload.
func BenchmarkNDJSONStream(b *testing.B) {
	srv, total := benchServer(b, 1<<14)
	window := int64(4096)
	if window > total {
		window = total
	}
	client := srv.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := post0(b, client, srv.URL+"/v1/queries/bench/cursor", `{"start":0}`)
		var cr cursorResponse
		decodeBody(b, resp, &cr)

		req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/cursors/"+cr.Cursor+"/next?n=4096", nil)
		if err != nil {
			b.Fatal(err)
		}
		req.Header.Set("Accept", "application/x-ndjson")
		sresp, err := client.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		if sresp.StatusCode != http.StatusOK {
			b.Fatalf("stream status %d", sresp.StatusCode)
		}
		nbytes, err := io.Copy(io.Discard, bufio.NewReader(sresp.Body))
		sresp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(nbytes)

		req, err = http.NewRequest(http.MethodDelete, srv.URL+"/v1/cursors/"+cr.Cursor, nil)
		if err != nil {
			b.Fatal(err)
		}
		dresp, err := client.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		dresp.Body.Close()
	}
}

func post0(b *testing.B, client *http.Client, url, body string) *http.Response {
	b.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		b.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	return resp
}

func decodeBody(b *testing.B, resp *http.Response, into any) {
	b.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		b.Fatal(err)
	}
}
