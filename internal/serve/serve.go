// Package serve exposes an engine.Engine as an HTTP/JSON service — the
// front end cmd/serve mounts. All request bodies are JSON; answers are
// head tuples of dictionary-encoded int64 values.
//
// The primary surface is the versioned prepared-query API under /v1
// (register a spec once under a name, probe and stream it by name —
// see v1.go), the batch mutation endpoint /v1/write (atomic,
// WAL-durable relational writes — see write.go), plus the snapshot
// durability endpoints when a snapshot directory is configured
// (checkpoint/list/restore — see snapshots.go).
// The one-shot endpoints live under /v1/instance:
//
//	POST /v1/instance/load      {"relation": "R", "rows": [[1,2], ...]}
//	POST /v1/instance/access    {"query", "order"|"sum_by", "fds", "ks": [0, 7, ...]}
//	POST /v1/instance/range     {"query", "order"|"sum_by", "fds", "k0", "k1"}
//	POST /v1/instance/select    {"query", "order"|"sum_by", "fds", "k"}
//	POST /v1/instance/classify  {"problem", "query", "order", "fds"}
//	POST /v1/instance/count     {"query"}
//	GET  /v1/stats
//	GET  /healthz
//	GET  /readyz
//	GET  /metrics
//
// The unversioned originals (/load, /access, ..., /stats) stay mounted
// as deprecation shims over the same handlers: byte-identical bodies,
// plus Deprecation and Link: rel="successor-version" headers (see
// CONTRIBUTING.md for the sunset policy).
//
// Observability (this file + metrics.go/reqlog.go/ops.go): every
// route passes a per-endpoint middleware recording request counts by
// response class, latency histograms, and in-flight gauges; GET
// /metrics renders them — plus every engine/admission/coalescer/WAL
// counter — in the Prometheus text format; Config.RequestLog enables
// structured per-request slog records with propagated request ids; and
// NewOpsHandler mounts pprof + monitoring for a private ops listener.
//
// /access is batched: any number of indices is answered with a single
// plan/cache lookup, so a cold query pays one preprocessing and a warm
// query pays none. /range answers a contiguous index window through the
// engine's AccessRange, which reuses one probe buffer for the whole
// window. Response encoding goes through pooled buffers, so the handlers
// allocate per response burst, not per answer.
//
// Sharded serving: /access, /range, and /count accept "shards" (and
// optionally "shard_by"); the engine partitions the instance, builds
// per-shard structures in parallel, and the handlers' probes fan out
// across shards and merge by global rank — each shard keeping its
// zero-alloc buffered probe path.
//
// Overload behavior: every non-monitoring request passes the admission
// pipeline (per-client token bucket → per-request deadline → global
// concurrency gate, see resilience.go); hot probe windows coalesce
// (see coalesce.go); a degraded engine serves reads from the last
// published epoch and sheds writes with 503 + Retry-After. /stats,
// /healthz, and /readyz bypass admission.
//
// Error handling: every response funnels through one writer that
// encodes the full body before emitting the status line, so error
// statuses are always set before any byte of the body and every error
// body is a structured {"error": ...} object.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rankedaccess/internal/access"
	"rankedaccess/internal/admission"
	"rankedaccess/internal/engine"
	"rankedaccess/internal/metrics"
	"rankedaccess/internal/rpc"
	"rankedaccess/internal/trace"
	"rankedaccess/internal/values"
)

// defaultMaxBody bounds request bodies when Config.MaxBodyBytes is
// unset (a /load of a few million rows fits).
const defaultMaxBody = 256 << 20

// defaultStreamWriteTimeout bounds each NDJSON chunk write when
// Config.StreamWriteTimeout is unset: a reader that accepts nothing
// for this long is presumed gone, and its stream — and the epoch
// handle the cursor pins — is released.
const defaultStreamWriteTimeout = 30 * time.Second

// maxPooledBuf bounds (in bytes) the encode buffers kept in the pool,
// and maxPooledTuples bounds (in values) the flat answer buffers, so
// one giant response does not pin its memory forever.
const (
	maxPooledBuf    = 1 << 20
	maxPooledTuples = maxPooledBuf / 8
)

// encPool recycles JSON encode buffers across responses.
var encPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// tuplePool recycles the flat answer buffers of /range responses.
var tuplePool = sync.Pool{New: func() any { return new([]values.Value) }}

// ndjsonPool recycles the line-encoding buffers of NDJSON streaming.
var ndjsonPool = sync.Pool{New: func() any { return new([]byte) }}

// putTupleBuf returns a flat answer buffer to the pool unless it grew
// past the cap.
func putTupleBuf(flatP *[]values.Value, flat []values.Value) {
	if cap(flat) <= maxPooledTuples {
		*flatP = flat
		tuplePool.Put(flatP)
	}
}

// Config tunes optional server features. The zero value serves with
// resilience features at safe defaults: no rate limit, no concurrency
// gate, no request deadline (set them to engage admission control),
// coalescing on, 256 MiB bodies, 30s stream write deadline.
type Config struct {
	// SnapshotDir, when non-empty, enables the durability endpoints
	// (/v1/snapshots — checkpoint, list, restore) against that
	// directory, and gates /readyz on the directory staying writable.
	// Empty leaves them unmounted.
	SnapshotDir string

	// RequestTimeout bounds one non-streaming request end to end,
	// including queue wait and engine work; a request that exceeds it
	// is answered 503 with Retry-After. 0 means no deadline.
	RequestTimeout time.Duration

	// MaxBodyBytes caps request bodies (413 beyond it) on every
	// decoding endpoint, /v1/write included. 0 means 256 MiB.
	MaxBodyBytes int64

	// RatePerSec and RateBurst configure the per-client token bucket;
	// clients over budget get 429 with Retry-After. RatePerSec <= 0
	// disables rate limiting.
	RatePerSec float64
	RateBurst  int

	// MaxConcurrent caps requests running at once; MaxQueue caps how
	// many may wait for a slot (beyond that: 503 + Retry-After).
	// MaxConcurrent <= 0 disables the gate; MaxQueue < 0 defaults to
	// MaxConcurrent.
	MaxConcurrent int
	MaxQueue      int

	// StreamWriteTimeout bounds each NDJSON chunk write, so one
	// stalled reader cannot pin a cursor's epoch forever. 0 means 30s;
	// negative disables the deadline.
	StreamWriteTimeout time.Duration

	// CoalesceCache is the number of hot probe-window bodies kept for
	// reuse. 0 means 256; negative disables coalescing entirely.
	CoalesceCache int

	// RequestLog, when non-nil, emits one structured record per request
	// (pair it with slog.NewJSONHandler for JSON logs): method, path,
	// endpoint, status, bytes, latency, client, request id. Ids are
	// adopted from X-Request-ID or minted, echoed in the response
	// header, and propagated via context into engine build/rebuild/
	// degradation events (see internal/reqid). Nil disables request
	// logging — and skips its per-request work entirely.
	RequestLog *slog.Logger

	// LogMaxPerSec bounds request-log volume under load: past this many
	// records in one wall-clock second, only every 16th further record
	// is kept (drops are counted in
	// ra_http_request_logs_sampled_out_total). 0 means 500; negative
	// disables sampling.
	LogMaxPerSec int

	// ReadyCheck, when non-nil, contributes extra readiness reasons to
	// /readyz (each returned string flips readiness false). The
	// coordinator role wires its cluster health here, so an unreachable
	// shard node routes traffic away.
	ReadyCheck func() []string

	// ExtraMetrics, when non-nil, is invoked once on the server's
	// metrics registry at construction, so roles can attach their own
	// series (per-peer RPC metrics, RPC server counters) to the same
	// /metrics endpoint.
	ExtraMetrics func(*metrics.Registry)

	// Tracer, when non-nil, wraps every request in a server span:
	// incoming traceparent headers are adopted (the request joins its
	// caller's trace), otherwise a trace is minted; latency-histogram
	// exemplars link /metrics buckets to the stored traces. Nil
	// disables tracing with zero per-request cost.
	Tracer *trace.Tracer
}

// server holds one mounted API's state: the engine, admission
// machinery, cursor store, coalescer, and overload counters.
type server struct {
	e   *engine.Engine
	cfg Config
	st  *cursorStore

	lim  *admission.RateLimiter // nil: rate limiting off
	gate *admission.Gate        // nil: concurrency gate off
	coal *coalescer             // nil: coalescing off

	maxBody     int64
	streamWrite time.Duration // <= 0: no per-chunk write deadline

	shed429       atomic.Uint64 // rate-limited requests
	shed503       atomic.Uint64 // gate-shed requests
	degradedReads atomic.Uint64 // reads answered from a stale epoch
	writeSheds    atomic.Uint64 // writes refused while degraded

	mets    *serverMetrics // /metrics registry + per-endpoint series
	reqLog  *slog.Logger   // nil: request logging off
	logSamp logSampler
	tracer  *trace.Tracer // nil: tracing off

	healthMu sync.Mutex
	healthAt time.Time
	healthC  engine.Health
}

// NewHandler mounts the API for one engine with default configuration;
// see NewHandlerWith.
func NewHandler(e *engine.Engine) http.Handler {
	return NewHandlerWith(e, Config{})
}

// NewHandlerWith mounts the API for one engine: the versioned /v1
// prepared-query surface (see v1.go), the snapshot endpoints when
// configured (see snapshots.go), the probe endpoints (see health.go),
// and the legacy one-shot endpoints, which are thin shims over the
// same cores and remain supported (see CONTRIBUTING.md for the
// deprecation policy).
func NewHandlerWith(e *engine.Engine, cfg Config) http.Handler {
	s := &server{e: e, cfg: cfg, st: newCursorStore(defaultMaxCursors)}
	s.maxBody = cfg.MaxBodyBytes
	if s.maxBody <= 0 {
		s.maxBody = defaultMaxBody
	}
	s.streamWrite = cfg.StreamWriteTimeout
	if s.streamWrite == 0 {
		s.streamWrite = defaultStreamWriteTimeout
	}
	if cfg.RatePerSec > 0 {
		s.lim = admission.NewRateLimiter(cfg.RatePerSec, cfg.RateBurst, 0)
	}
	if cfg.MaxConcurrent > 0 {
		s.gate = admission.NewGate(cfg.MaxConcurrent, cfg.MaxQueue)
	}
	if cfg.CoalesceCache >= 0 {
		s.coal = newCoalescer(cfg.CoalesceCache)
	}
	s.reqLog = cfg.RequestLog
	s.tracer = cfg.Tracer
	s.logSamp.max = int64(cfg.LogMaxPerSec)
	if s.logSamp.max == 0 {
		s.logSamp.max = defaultLogMaxPerSec
	}
	// The metrics registry needs the gate/coalescer/cursor store above;
	// the routes below need the registry (instrument resolves each
	// endpoint's series at mount time, so request paths never look one
	// up).
	s.mets = newServerMetrics(s)

	mux := http.NewServeMux()

	// One-shot instance endpoints, canonical under /v1/instance. The
	// unversioned originals stay mounted as deprecation shims: the same
	// handler chain (bodies stay byte-identical), plus Deprecation and
	// Link response headers and a deprecated-traffic counter. See
	// CONTRIBUTING.md for the sunset policy.
	s.route(mux, "POST /v1/instance/load", "instance_load", s.admit(s.handleLoad))
	s.route(mux, "POST /v1/instance/access", "instance_access", s.admit(s.handleAccess))
	s.route(mux, "POST /v1/instance/range", "instance_range", s.admit(s.handleRange))
	s.route(mux, "POST /v1/instance/select", "instance_select", s.admit(s.handleSelect))
	s.route(mux, "POST /v1/instance/classify", "instance_classify", s.admit(s.handleClassify))
	s.route(mux, "POST /v1/instance/count", "instance_count", s.admit(s.handleCount))
	s.routeDeprecated(mux, "POST /load", "instance_load", "/v1/instance/load", s.admit(s.handleLoad))
	s.routeDeprecated(mux, "POST /access", "instance_access", "/v1/instance/access", s.admit(s.handleAccess))
	s.routeDeprecated(mux, "POST /range", "instance_range", "/v1/instance/range", s.admit(s.handleRange))
	s.routeDeprecated(mux, "POST /select", "instance_select", "/v1/instance/select", s.admit(s.handleSelect))
	s.routeDeprecated(mux, "POST /classify", "instance_classify", "/v1/instance/classify", s.admit(s.handleClassify))
	s.routeDeprecated(mux, "POST /count", "instance_count", "/v1/instance/count", s.admit(s.handleCount))

	// Monitoring endpoints bypass admission: an operator must be able
	// to observe (and an orchestrator to probe) an overloaded server.
	// They still pass the middleware, so scrape/probe traffic is
	// visible in the request series like everything else.
	s.route(mux, "GET /v1/stats", "stats", s.handleStats)
	s.routeDeprecated(mux, "GET /stats", "stats", "/v1/stats", s.handleStats)
	s.route(mux, "GET /healthz", "healthz", s.handleHealthz)
	s.route(mux, "GET /readyz", "readyz", s.handleReadyz)
	s.route(mux, "GET /metrics", "metrics", s.handleMetrics)

	s.route(mux, "POST /v1/write", "write", s.admit(s.handleWrite))
	s.route(mux, "POST /v1/queries", "queries_register", s.admit(s.handleRegister))
	s.route(mux, "GET /v1/queries", "queries_list", s.admit(s.handleList))
	s.route(mux, "GET /v1/queries/{name}", "queries_get", s.admit(s.handleGetQuery))
	s.route(mux, "DELETE /v1/queries/{name}", "queries_evict", s.admit(s.handleEvict))
	s.route(mux, "POST /v1/queries/{name}/access", "query_access", s.admit(s.handleV1Access))
	s.route(mux, "POST /v1/queries/{name}/range", "query_range", s.admit(s.handleV1Range))
	s.route(mux, "POST /v1/queries/{name}/select", "query_select", s.admit(s.handleV1Select))
	s.route(mux, "POST /v1/queries/{name}/count", "query_count", s.admit(s.handleV1Count))
	s.route(mux, "POST /v1/queries/{name}/classify", "query_classify", s.admit(s.handleV1Classify))
	s.route(mux, "POST /v1/queries/{name}/cursor", "cursor_create", s.admit(s.handleCursorCreate))
	s.route(mux, "GET /v1/cursors/{id}/next", "cursor_next", s.admitStream(s.handleCursorNext))
	s.route(mux, "DELETE /v1/cursors/{id}", "cursor_close", s.admit(s.handleCursorClose))
	if dir := cfg.SnapshotDir; dir != "" {
		s.route(mux, "POST /v1/snapshots", "snapshot_create",
			s.admit(func(w http.ResponseWriter, r *http.Request) { handleSnapshotCreate(e, dir, w, r) }))
		s.route(mux, "GET /v1/snapshots", "snapshot_list",
			s.admit(func(w http.ResponseWriter, r *http.Request) { handleSnapshotList(dir, w, r) }))
		s.route(mux, "POST /v1/snapshots/{name}/restore", "snapshot_restore",
			s.admit(func(w http.ResponseWriter, r *http.Request) { handleSnapshotRestore(e, dir, w, r) }))
	}
	return apiHandler{ServeMux: mux, s: s}
}

// route mounts one endpoint under the per-endpoint middleware (see
// instrument in metrics.go). The endpoint name is the metric label —
// one of a fixed set chosen here, never derived from the request.
func (s *server) route(mux *http.ServeMux, pattern, endpoint string, h http.HandlerFunc) {
	mux.HandleFunc(pattern, s.instrument(endpoint, h))
}

// routeDeprecated mounts a legacy path as a shim over its /v1
// successor: the same handler chain, so bodies stay byte-identical,
// plus RFC 8594-style deprecation headers and a per-endpoint
// deprecated-traffic counter (how much legacy traffic remains is the
// input to the sunset policy in CONTRIBUTING.md). The shim shares the
// successor's endpoint label; the deprecated counter is what splits
// legacy volume out of the shared series.
func (s *server) routeDeprecated(mux *http.ServeMux, pattern, endpoint, successor string, h http.HandlerFunc) {
	dep := s.mets.deprecatedFor(endpoint)
	link := "<" + successor + `>; rel="successor-version"`
	mux.HandleFunc(pattern, s.instrument(endpoint, func(w http.ResponseWriter, r *http.Request) {
		dep.Inc()
		s.mets.deprecatedTotal.Add(1)
		hd := w.Header()
		hd.Set("Deprecation", "true")
		hd.Set("Link", link)
		h(w, r)
	}))
}

// specPayload is the request fragment shared by the query endpoints.
// Shards ≥ 2 requests scatter-gather execution: the engine partitions
// the instance, builds per-shard structures in parallel, and the
// handlers' accesses fan out across shards and merge by global rank.
type specPayload struct {
	Query   string   `json:"query"`
	Order   string   `json:"order,omitempty"`
	SumBy   []string `json:"sum_by,omitempty"`
	FDs     []string `json:"fds,omitempty"`
	Shards  int      `json:"shards,omitempty"`
	ShardBy string   `json:"shard_by,omitempty"`
}

func (p specPayload) spec() engine.Spec {
	return engine.Spec{
		Query: p.Query, Order: p.Order, SumBy: p.SumBy, FDs: p.FDs,
		Shards: p.Shards, ShardBy: p.ShardBy,
	}
}

// shardEcho is the response fragment reporting how a request was
// sharded (omitted entirely when execution was single-structure).
type shardEcho struct {
	Shards    int    `json:"shards,omitempty"`
	ShardBy   string `json:"shard_by,omitempty"`
	ShardNote string `json:"shard_note,omitempty"`
}

func shardInfo(p engine.Plan) shardEcho {
	return shardEcho{Shards: p.Shards, ShardBy: p.ShardBy, ShardNote: p.ShardNote}
}

type loadRequest struct {
	Relation string           `json:"relation"`
	Rows     [][]values.Value `json:"rows"`
}

type loadResponse struct {
	Relation string `json:"relation"`
	Loaded   int    `json:"loaded"`
	Version  uint64 `json:"version"`
}

func (s *server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if s.shedWrite(w, r) {
		return
	}
	var req loadRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Relation == "" {
		fail(w, http.StatusBadRequest, errors.New("serve: relation is required"))
		return
	}
	// AddRows validates arity (against the existing relation or within
	// the batch) before mutating anything.
	if err := s.e.AddRows(req.Relation, req.Rows); err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	reply(w, loadResponse{Relation: req.Relation, Loaded: len(req.Rows), Version: s.e.Version()})
}

type accessRequest struct {
	specPayload
	Ks []int64 `json:"ks"`
}

type accessAnswer struct {
	K     int64          `json:"k"`
	Tuple []values.Value `json:"tuple,omitempty"`
	Error string         `json:"error,omitempty"`
}

type accessResponse struct {
	Total     int64  `json:"total"`
	Mode      string `json:"mode"`
	Tractable bool   `json:"tractable"`
	Verdict   string `json:"verdict"`
	shardEcho
	Answers []accessAnswer `json:"answers"`
}

// buildAccessResponse probes a batch of indices against a prepared
// handle — the core shared by the legacy /access endpoint and
// /v1/queries/{name}/access. One flat backing array serves the whole
// batch; per-index failures land in the answer entries without failing
// the batch — EXCEPT infrastructure failures (an unreachable or stale
// shard node), which abort the whole batch: a half-answered batch
// whose gaps mean "the cluster is down", not "out of range", would
// read as data.
func buildAccessResponse(ctx context.Context, h *engine.Handle, ks []int64) (accessResponse, error) {
	resp := accessResponse{
		Total:     h.Total(),
		Mode:      string(h.Plan.Mode),
		Tractable: h.Plan.Tractable,
		Verdict:   h.Plan.Verdict.String(),
		shardEcho: shardInfo(h.Plan),
		Answers:   make([]accessAnswer, len(ks)),
	}
	flat := make([]values.Value, 0, len(ks)*h.Width())
	for i, k := range ks {
		resp.Answers[i].K = k
		start := len(flat)
		var err error
		flat, err = h.AppendTupleCtx(ctx, flat, k)
		if err != nil {
			if errors.Is(err, rpc.ErrUnavailable) || errors.Is(err, rpc.ErrStaleVersion) {
				return accessResponse{}, err
			}
			resp.Answers[i].Error = publicErr(err)
			flat = flat[:start]
			continue
		}
		resp.Answers[i].Tuple = flat[start:len(flat):len(flat)]
	}
	return resp, nil
}

func (s *server) handleAccess(w http.ResponseWriter, r *http.Request) {
	var req accessRequest
	if !s.decode(w, r, &req) {
		return
	}
	h, err := s.e.PrepareCtx(r.Context(), req.spec())
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	resp, err := buildAccessResponse(r.Context(), h, req.Ks)
	if err != nil {
		failErr(w, err)
		return
	}
	reply(w, resp)
}

type rangeRequest struct {
	specPayload
	K0 int64 `json:"k0"`
	K1 int64 `json:"k1"`
}

type rangeResponse struct {
	Total     int64  `json:"total"`
	Mode      string `json:"mode"`
	Tractable bool   `json:"tractable"`
	K0        int64  `json:"k0"`
	shardEcho
	Tuples [][]values.Value `json:"tuples"`
}

// maxRange bounds one /range window (the client can page).
const maxRange = 1 << 20

func (s *server) handleRange(w http.ResponseWriter, r *http.Request) {
	var req rangeRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.K1-req.K0 > maxRange {
		fail(w, http.StatusBadRequest, fmt.Errorf("serve: range wider than %d; page the request", maxRange))
		return
	}
	h, err := s.e.PrepareCtx(r.Context(), req.spec())
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	flatP := tuplePool.Get().(*[]values.Value)
	flat, err := h.AccessRangeCtx(r.Context(), (*flatP)[:0], req.K0, req.K1)
	if err != nil {
		putTupleBuf(flatP, flat)
		status := http.StatusBadRequest
		if errors.Is(err, access.ErrOutOfBound) {
			status = http.StatusRequestedRangeNotSatisfiable
		}
		fail(w, status, err)
		return
	}
	reply(w, buildRangeResponse(h, flat, req.K0, req.K1))
	putTupleBuf(flatP, flat)
}

// buildRangeResponse slices one flat answer buffer into per-tuple
// views — the core shared by the legacy /range endpoint and
// /v1/queries/{name}/range.
func buildRangeResponse(h *engine.Handle, flat []values.Value, k0, k1 int64) rangeResponse {
	width := h.Width()
	resp := rangeResponse{
		Total: h.Total(), Mode: string(h.Plan.Mode), Tractable: h.Plan.Tractable, K0: k0,
		shardEcho: shardInfo(h.Plan),
	}
	n := 0
	if width > 0 {
		n = len(flat) / width
	} else {
		n = int(k1 - k0)
	}
	resp.Tuples = make([][]values.Value, n)
	for i := 0; i < n; i++ {
		resp.Tuples[i] = flat[i*width : (i+1)*width : (i+1)*width]
	}
	return resp
}

type selectRequest struct {
	specPayload
	K int64 `json:"k"`
}

type selectResponse struct {
	K     int64          `json:"k"`
	Tuple []values.Value `json:"tuple"`
}

func (s *server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req selectRequest
	if !s.decode(w, r, &req) {
		return
	}
	tuple, err := s.e.Select(req.spec(), req.K)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, access.ErrOutOfBound) {
			status = http.StatusNotFound
		}
		fail(w, status, err)
		return
	}
	reply(w, selectResponse{K: req.K, Tuple: tuple})
}

type classifyRequest struct {
	specPayload
	Problem string `json:"problem"`
}

type classifyResponse struct {
	Tractable bool     `json:"tractable"`
	Bound     string   `json:"bound"`
	Verdict   string   `json:"verdict"`
	Trio      []string `json:"trio,omitempty"`
}

func (s *server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req classifyRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Problem == "" {
		req.Problem = engine.ProblemDirectAccessLex
	}
	v, err := s.e.Classify(req.Problem, req.spec())
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	reply(w, classifyResponse{Tractable: v.Tractable, Bound: v.Bound, Verdict: v.String(), Trio: v.Trio})
}

type countRequest struct {
	Query   string `json:"query"`
	Shards  int    `json:"shards,omitempty"`
	ShardBy string `json:"shard_by,omitempty"`
}

type countResponse struct {
	Count int64 `json:"count"`
	shardEcho
}

func (s *server) handleCount(w http.ResponseWriter, r *http.Request) {
	var req countRequest
	if !s.decode(w, r, &req) {
		return
	}
	// Shards ≥ 2 scatter-gathers: per-shard counts run in parallel and
	// sum (shard answer sets partition the answer space).
	n, info, err := s.e.CountSharded(req.Query, req.Shards, req.ShardBy)
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	reply(w, countResponse{Count: n, shardEcho: shardEcho{
		Shards: info.Shards, ShardBy: info.ShardBy, ShardNote: info.ShardNote,
	}})
}

type statsResponse struct {
	Hits    uint64 `json:"cache_hits"`
	Misses  uint64 `json:"cache_misses"`
	Entries int    `json:"cache_entries"`
	Version uint64 `json:"version"`
	Tuples  int    `json:"tuples"`
	// Prepared-query registry counters: RegistryHits counts by-name
	// probes answered with zero spec re-parsing, Reprepares counts
	// automatic rebuilds after instance mutation.
	Prepared     int    `json:"prepared"`
	RegistryHits uint64 `json:"registry_hits"`
	Reprepares   uint64 `json:"reprepares"`
	OpenCursors  int    `json:"open_cursors"`
	// Snapshot counters: checkpoints written, restores applied, and the
	// number of structures the most recent warm start rehydrated from a
	// mapped snapshot instead of rebuilding.
	Checkpoints    uint64 `json:"snapshot_checkpoints"`
	Restores       uint64 `json:"snapshot_restores"`
	WarmStructures uint64 `json:"warm_structures"`
	// Write-path counters: mutation batches applied, and how stale
	// structures caught up — republished unchanged (untouched
	// relations), advanced by delta overlay, or forced to rebuild —
	// plus background re-preprocesses that swapped in.
	WALBatches    uint64 `json:"wal_batches"`
	DeltaSkips    uint64 `json:"delta_skips"`
	DeltaEpochs   uint64 `json:"delta_epochs"`
	DeltaRebuilds uint64 `json:"delta_rebuilds"`
	BGRebuilds    uint64 `json:"bg_rebuilds"`
	WALErrors     uint64 `json:"wal_errors"`
	// Overload counters: requests shed by the rate limiter (429) and
	// the concurrency gate (503), current gate occupancy and queue
	// depth, coalescer traffic, reads served from a stale epoch while
	// degraded, and writes refused while degraded.
	Shed429        uint64 `json:"shed_rate_limited"`
	Shed503        uint64 `json:"shed_overload"`
	InFlight       int    `json:"in_flight"`
	QueueDepth     int    `json:"queue_depth"`
	CoalesceHits   uint64 `json:"coalesce_hits"`
	CoalesceMisses uint64 `json:"coalesce_misses"`
	DegradedReads  uint64 `json:"degraded_reads"`
	WriteSheds     uint64 `json:"write_sheds"`
	Degraded       bool   `json:"degraded"`
	// DeprecatedRequests counts requests answered through a deprecated
	// legacy route (the unversioned shims over /v1/instance/* and
	// /v1/stats).
	DeprecatedRequests uint64 `json:"deprecated_requests"`
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.e.Stats()
	resp := statsResponse{
		Hits: st.Hits, Misses: st.Misses, Entries: st.Entries,
		Version: st.Version, Tuples: st.Tuples,
		Prepared: st.Prepared, RegistryHits: st.RegistryHits,
		Reprepares: st.Reprepares, OpenCursors: s.st.open(),
		Checkpoints: st.Checkpoints, Restores: st.Restores,
		WarmStructures: st.WarmStructures,
		WALBatches:     st.WALBatches, DeltaSkips: st.DeltaSkips,
		DeltaEpochs: st.DeltaEpochs, DeltaRebuilds: st.DeltaRebuilds,
		BGRebuilds: st.BGRebuilds, WALErrors: st.WALErrors,
		Shed429:            s.shed429.Load(),
		Shed503:            s.shed503.Load(),
		DegradedReads:      s.degradedReads.Load(),
		WriteSheds:         s.writeSheds.Load(),
		Degraded:           s.health().Degraded(),
		DeprecatedRequests: s.mets.deprecatedTotal.Load(),
	}
	if s.gate != nil {
		resp.InFlight = s.gate.Active()
		resp.QueueDepth = s.gate.QueueDepth()
	}
	if s.coal != nil {
		resp.CoalesceHits = s.coal.hits.Load()
		resp.CoalesceMisses = s.coal.misses.Load()
	}
	reply(w, resp)
}

func (s *server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		fail(w, status, fmt.Errorf("serve: bad request body: %w", err))
		return false
	}
	return true
}

type errorResponse struct {
	Error string `json:"error"`
}

// fail writes a structured error. A deadline or cancellation error is
// never the client's fault in this API — it means the request ran out
// of budget inside the engine — so it is reported as overload: 503
// with a Retry-After, regardless of the status the handler guessed.
func fail(w http.ResponseWriter, status int, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		status = http.StatusServiceUnavailable
		setRetryAfter(w, time.Second)
	}
	// An unreachable shard node already survived the RPC layer's
	// retry-once; tell the client when to come back instead of letting
	// it hammer a cluster that is mid-failover.
	if errors.Is(err, rpc.ErrUnavailable) {
		status = http.StatusServiceUnavailable
		setRetryAfter(w, time.Second)
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func reply(w http.ResponseWriter, body any) {
	writeJSON(w, http.StatusOK, body)
}

// writeJSON encodes through a pooled buffer: one write syscall per
// response and no per-response encoder garbage. Oversized buffers are
// dropped instead of pooled.
//
// Every handler response — success or error — funnels through here, and
// the body is fully encoded into the buffer BEFORE the status line is
// written: a late encoding failure therefore still produces a clean
// status code and a structured {"error": ...} body, never a 200 with a
// truncated or mixed payload.
func writeJSON(w http.ResponseWriter, status int, body any) {
	buf := encPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(body); err != nil {
		encPool.Put(buf)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte(`{"error":"serve: response encoding failed"}` + "\n"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	if buf.Cap() <= maxPooledBuf {
		encPool.Put(buf)
	}
}

// writeRaw emits a pre-encoded JSON body (the coalescer caches and
// shares encoded bodies across requests).
func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// encodeJSON renders a response body to a standalone slice — coalesce
// cache entries outlive any one request, so no pooled buffer.
func encodeJSON(body any) ([]byte, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// publicErr maps per-index access errors to stable API strings.
func publicErr(err error) string {
	switch {
	case errors.Is(err, access.ErrOutOfBound):
		return "out of bound"
	case errors.Is(err, access.ErrNotAnAnswer):
		return "not an answer"
	default:
		return err.Error()
	}
}
