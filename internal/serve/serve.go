// Package serve exposes an engine.Engine as an HTTP/JSON service — the
// front end cmd/serve mounts. All request bodies are JSON; answers are
// head tuples of dictionary-encoded int64 values.
//
// The primary surface is the versioned prepared-query API under /v1
// (register a spec once under a name, probe and stream it by name —
// see v1.go), the batch mutation endpoint /v1/write (atomic,
// WAL-durable relational writes — see write.go), plus the snapshot
// durability endpoints when a snapshot directory is configured
// (checkpoint/list/restore — see snapshots.go).
// The legacy one-shot endpoints remain as thin shims over the same
// cores:
//
//	POST /load      {"relation": "R", "rows": [[1,2], ...]}
//	POST /access    {"query", "order"|"sum_by", "fds", "ks": [0, 7, ...]}
//	POST /range     {"query", "order"|"sum_by", "fds", "k0", "k1"}
//	POST /select    {"query", "order"|"sum_by", "fds", "k"}
//	POST /classify  {"problem", "query", "order", "fds"}
//	POST /count     {"query"}
//	GET  /stats
//
// /access is batched: any number of indices is answered with a single
// plan/cache lookup, so a cold query pays one preprocessing and a warm
// query pays none. /range answers a contiguous index window through the
// engine's AccessRange, which reuses one probe buffer for the whole
// window. Response encoding goes through pooled buffers, so the handlers
// allocate per response burst, not per answer.
//
// Sharded serving: /access, /range, and /count accept "shards" (and
// optionally "shard_by"); the engine partitions the instance, builds
// per-shard structures in parallel, and the handlers' probes fan out
// across shards and merge by global rank — each shard keeping its
// zero-alloc buffered probe path. Responses echo the effective shard
// count and partition variable, or a note explaining a fallback.
//
// Error handling: every response funnels through one writer that
// encodes the full body before emitting the status line, so error
// statuses are always set before any byte of the body and every error
// body is a structured {"error": ...} object.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"rankedaccess/internal/access"
	"rankedaccess/internal/engine"
	"rankedaccess/internal/values"
)

// maxBody bounds request bodies (a /load of a few million rows fits).
const maxBody = 256 << 20

// maxPooledBuf bounds (in bytes) the encode buffers kept in the pool,
// and maxPooledTuples bounds (in values) the flat answer buffers, so
// one giant response does not pin its memory forever.
const (
	maxPooledBuf    = 1 << 20
	maxPooledTuples = maxPooledBuf / 8
)

// encPool recycles JSON encode buffers across responses.
var encPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// tuplePool recycles the flat answer buffers of /range responses.
var tuplePool = sync.Pool{New: func() any { return new([]values.Value) }}

// ndjsonPool recycles the line-encoding buffers of NDJSON streaming.
var ndjsonPool = sync.Pool{New: func() any { return new([]byte) }}

// putTupleBuf returns a flat answer buffer to the pool unless it grew
// past the cap.
func putTupleBuf(flatP *[]values.Value, flat []values.Value) {
	if cap(flat) <= maxPooledTuples {
		*flatP = flat
		tuplePool.Put(flatP)
	}
}

// Config tunes optional server features.
type Config struct {
	// SnapshotDir, when non-empty, enables the durability endpoints
	// (/v1/snapshots — checkpoint, list, restore) against that
	// directory. Empty leaves them unmounted.
	SnapshotDir string
}

// NewHandler mounts the API for one engine with default configuration;
// see NewHandlerWith.
func NewHandler(e *engine.Engine) http.Handler {
	return NewHandlerWith(e, Config{})
}

// NewHandlerWith mounts the API for one engine: the versioned /v1
// prepared-query surface (see v1.go), the snapshot endpoints when
// configured (see snapshots.go), and the legacy one-shot endpoints,
// which are thin shims over the same cores and remain supported (see
// CONTRIBUTING.md for the deprecation policy).
func NewHandlerWith(e *engine.Engine, cfg Config) http.Handler {
	st := newCursorStore(defaultMaxCursors)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /load", func(w http.ResponseWriter, r *http.Request) { handleLoad(e, w, r) })
	mux.HandleFunc("POST /access", func(w http.ResponseWriter, r *http.Request) { handleAccess(e, w, r) })
	mux.HandleFunc("POST /range", func(w http.ResponseWriter, r *http.Request) { handleRange(e, w, r) })
	mux.HandleFunc("POST /select", func(w http.ResponseWriter, r *http.Request) { handleSelect(e, w, r) })
	mux.HandleFunc("POST /classify", func(w http.ResponseWriter, r *http.Request) { handleClassify(e, w, r) })
	mux.HandleFunc("POST /count", func(w http.ResponseWriter, r *http.Request) { handleCount(e, w, r) })
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) { handleStats(e, st, w, r) })

	mux.HandleFunc("POST /v1/write", func(w http.ResponseWriter, r *http.Request) { handleWrite(e, w, r) })
	mux.HandleFunc("POST /v1/queries", func(w http.ResponseWriter, r *http.Request) { handleRegister(e, w, r) })
	mux.HandleFunc("GET /v1/queries", func(w http.ResponseWriter, r *http.Request) { handleList(e, w, r) })
	mux.HandleFunc("GET /v1/queries/{name}", func(w http.ResponseWriter, r *http.Request) { handleGetQuery(e, w, r) })
	mux.HandleFunc("DELETE /v1/queries/{name}", func(w http.ResponseWriter, r *http.Request) { handleEvict(e, w, r) })
	mux.HandleFunc("POST /v1/queries/{name}/access", func(w http.ResponseWriter, r *http.Request) { handleV1Access(e, w, r) })
	mux.HandleFunc("POST /v1/queries/{name}/range", func(w http.ResponseWriter, r *http.Request) { handleV1Range(e, w, r) })
	mux.HandleFunc("POST /v1/queries/{name}/select", func(w http.ResponseWriter, r *http.Request) { handleV1Select(e, w, r) })
	mux.HandleFunc("POST /v1/queries/{name}/count", func(w http.ResponseWriter, r *http.Request) { handleV1Count(e, w, r) })
	mux.HandleFunc("POST /v1/queries/{name}/classify", func(w http.ResponseWriter, r *http.Request) { handleV1Classify(e, w, r) })
	mux.HandleFunc("POST /v1/queries/{name}/cursor", func(w http.ResponseWriter, r *http.Request) { handleCursorCreate(e, st, w, r) })
	mux.HandleFunc("GET /v1/cursors/{id}/next", func(w http.ResponseWriter, r *http.Request) { handleCursorNext(st, w, r) })
	mux.HandleFunc("DELETE /v1/cursors/{id}", func(w http.ResponseWriter, r *http.Request) { handleCursorClose(st, w, r) })
	if dir := cfg.SnapshotDir; dir != "" {
		mux.HandleFunc("POST /v1/snapshots", func(w http.ResponseWriter, r *http.Request) { handleSnapshotCreate(e, dir, w, r) })
		mux.HandleFunc("GET /v1/snapshots", func(w http.ResponseWriter, r *http.Request) { handleSnapshotList(dir, w, r) })
		mux.HandleFunc("POST /v1/snapshots/{name}/restore", func(w http.ResponseWriter, r *http.Request) { handleSnapshotRestore(e, dir, w, r) })
	}
	return mux
}

// specPayload is the request fragment shared by the query endpoints.
// Shards ≥ 2 requests scatter-gather execution: the engine partitions
// the instance, builds per-shard structures in parallel, and the
// handlers' accesses fan out across shards and merge by global rank.
type specPayload struct {
	Query   string   `json:"query"`
	Order   string   `json:"order,omitempty"`
	SumBy   []string `json:"sum_by,omitempty"`
	FDs     []string `json:"fds,omitempty"`
	Shards  int      `json:"shards,omitempty"`
	ShardBy string   `json:"shard_by,omitempty"`
}

func (p specPayload) spec() engine.Spec {
	return engine.Spec{
		Query: p.Query, Order: p.Order, SumBy: p.SumBy, FDs: p.FDs,
		Shards: p.Shards, ShardBy: p.ShardBy,
	}
}

// shardEcho is the response fragment reporting how a request was
// sharded (omitted entirely when execution was single-structure).
type shardEcho struct {
	Shards    int    `json:"shards,omitempty"`
	ShardBy   string `json:"shard_by,omitempty"`
	ShardNote string `json:"shard_note,omitempty"`
}

func shardInfo(p engine.Plan) shardEcho {
	return shardEcho{Shards: p.Shards, ShardBy: p.ShardBy, ShardNote: p.ShardNote}
}

type loadRequest struct {
	Relation string           `json:"relation"`
	Rows     [][]values.Value `json:"rows"`
}

type loadResponse struct {
	Relation string `json:"relation"`
	Loaded   int    `json:"loaded"`
	Version  uint64 `json:"version"`
}

func handleLoad(e *engine.Engine, w http.ResponseWriter, r *http.Request) {
	var req loadRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Relation == "" {
		fail(w, http.StatusBadRequest, errors.New("serve: relation is required"))
		return
	}
	// AddRows validates arity (against the existing relation or within
	// the batch) before mutating anything.
	if err := e.AddRows(req.Relation, req.Rows); err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	reply(w, loadResponse{Relation: req.Relation, Loaded: len(req.Rows), Version: e.Version()})
}

type accessRequest struct {
	specPayload
	Ks []int64 `json:"ks"`
}

type accessAnswer struct {
	K     int64          `json:"k"`
	Tuple []values.Value `json:"tuple,omitempty"`
	Error string         `json:"error,omitempty"`
}

type accessResponse struct {
	Total     int64  `json:"total"`
	Mode      string `json:"mode"`
	Tractable bool   `json:"tractable"`
	Verdict   string `json:"verdict"`
	shardEcho
	Answers []accessAnswer `json:"answers"`
}

// buildAccessResponse probes a batch of indices against a prepared
// handle — the core shared by the legacy /access endpoint and
// /v1/queries/{name}/access. One flat backing array serves the whole
// batch; per-index failures land in the answer entries without failing
// the batch.
func buildAccessResponse(h *engine.Handle, ks []int64) accessResponse {
	resp := accessResponse{
		Total:     h.Total(),
		Mode:      string(h.Plan.Mode),
		Tractable: h.Plan.Tractable,
		Verdict:   h.Plan.Verdict.String(),
		shardEcho: shardInfo(h.Plan),
		Answers:   make([]accessAnswer, len(ks)),
	}
	flat := make([]values.Value, 0, len(ks)*h.Width())
	for i, k := range ks {
		resp.Answers[i].K = k
		start := len(flat)
		var err error
		flat, err = h.AppendTuple(flat, k)
		if err != nil {
			resp.Answers[i].Error = publicErr(err)
			flat = flat[:start]
			continue
		}
		resp.Answers[i].Tuple = flat[start:len(flat):len(flat)]
	}
	return resp
}

func handleAccess(e *engine.Engine, w http.ResponseWriter, r *http.Request) {
	var req accessRequest
	if !decode(w, r, &req) {
		return
	}
	h, err := e.Prepare(req.spec())
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	reply(w, buildAccessResponse(h, req.Ks))
}

type rangeRequest struct {
	specPayload
	K0 int64 `json:"k0"`
	K1 int64 `json:"k1"`
}

type rangeResponse struct {
	Total     int64  `json:"total"`
	Mode      string `json:"mode"`
	Tractable bool   `json:"tractable"`
	K0        int64  `json:"k0"`
	shardEcho
	Tuples [][]values.Value `json:"tuples"`
}

// maxRange bounds one /range window (the client can page).
const maxRange = 1 << 20

func handleRange(e *engine.Engine, w http.ResponseWriter, r *http.Request) {
	var req rangeRequest
	if !decode(w, r, &req) {
		return
	}
	if req.K1-req.K0 > maxRange {
		fail(w, http.StatusBadRequest, fmt.Errorf("serve: range wider than %d; page the request", maxRange))
		return
	}
	flatP := tuplePool.Get().(*[]values.Value)
	flat := (*flatP)[:0]
	h, flat, err := e.AccessRange(req.spec(), flat, req.K0, req.K1)
	if err != nil {
		putTupleBuf(flatP, flat)
		status := http.StatusBadRequest
		if errors.Is(err, access.ErrOutOfBound) {
			status = http.StatusRequestedRangeNotSatisfiable
		}
		fail(w, status, err)
		return
	}
	reply(w, buildRangeResponse(h, flat, req.K0, req.K1))
	putTupleBuf(flatP, flat)
}

// buildRangeResponse slices one flat answer buffer into per-tuple
// views — the core shared by the legacy /range endpoint and
// /v1/queries/{name}/range.
func buildRangeResponse(h *engine.Handle, flat []values.Value, k0, k1 int64) rangeResponse {
	width := h.Width()
	resp := rangeResponse{
		Total: h.Total(), Mode: string(h.Plan.Mode), Tractable: h.Plan.Tractable, K0: k0,
		shardEcho: shardInfo(h.Plan),
	}
	n := 0
	if width > 0 {
		n = len(flat) / width
	} else {
		n = int(k1 - k0)
	}
	resp.Tuples = make([][]values.Value, n)
	for i := 0; i < n; i++ {
		resp.Tuples[i] = flat[i*width : (i+1)*width : (i+1)*width]
	}
	return resp
}

type selectRequest struct {
	specPayload
	K int64 `json:"k"`
}

type selectResponse struct {
	K     int64          `json:"k"`
	Tuple []values.Value `json:"tuple"`
}

func handleSelect(e *engine.Engine, w http.ResponseWriter, r *http.Request) {
	var req selectRequest
	if !decode(w, r, &req) {
		return
	}
	tuple, err := e.Select(req.spec(), req.K)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, access.ErrOutOfBound) {
			status = http.StatusNotFound
		}
		fail(w, status, err)
		return
	}
	reply(w, selectResponse{K: req.K, Tuple: tuple})
}

type classifyRequest struct {
	specPayload
	Problem string `json:"problem"`
}

type classifyResponse struct {
	Tractable bool     `json:"tractable"`
	Bound     string   `json:"bound"`
	Verdict   string   `json:"verdict"`
	Trio      []string `json:"trio,omitempty"`
}

func handleClassify(e *engine.Engine, w http.ResponseWriter, r *http.Request) {
	var req classifyRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Problem == "" {
		req.Problem = engine.ProblemDirectAccessLex
	}
	v, err := e.Classify(req.Problem, req.spec())
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	reply(w, classifyResponse{Tractable: v.Tractable, Bound: v.Bound, Verdict: v.String(), Trio: v.Trio})
}

type countRequest struct {
	Query   string `json:"query"`
	Shards  int    `json:"shards,omitempty"`
	ShardBy string `json:"shard_by,omitempty"`
}

type countResponse struct {
	Count int64 `json:"count"`
	shardEcho
}

func handleCount(e *engine.Engine, w http.ResponseWriter, r *http.Request) {
	var req countRequest
	if !decode(w, r, &req) {
		return
	}
	// Shards ≥ 2 scatter-gathers: per-shard counts run in parallel and
	// sum (shard answer sets partition the answer space).
	n, info, err := e.CountSharded(req.Query, req.Shards, req.ShardBy)
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	reply(w, countResponse{Count: n, shardEcho: shardEcho{
		Shards: info.Shards, ShardBy: info.ShardBy, ShardNote: info.ShardNote,
	}})
}

type statsResponse struct {
	Hits    uint64 `json:"cache_hits"`
	Misses  uint64 `json:"cache_misses"`
	Entries int    `json:"cache_entries"`
	Version uint64 `json:"version"`
	Tuples  int    `json:"tuples"`
	// Prepared-query registry counters: RegistryHits counts by-name
	// probes answered with zero spec re-parsing, Reprepares counts
	// automatic rebuilds after instance mutation.
	Prepared     int    `json:"prepared"`
	RegistryHits uint64 `json:"registry_hits"`
	Reprepares   uint64 `json:"reprepares"`
	OpenCursors  int    `json:"open_cursors"`
	// Snapshot counters: checkpoints written, restores applied, and the
	// number of structures the most recent warm start rehydrated from a
	// mapped snapshot instead of rebuilding.
	Checkpoints    uint64 `json:"snapshot_checkpoints"`
	Restores       uint64 `json:"snapshot_restores"`
	WarmStructures uint64 `json:"warm_structures"`
	// Write-path counters: mutation batches applied, and how stale
	// structures caught up — republished unchanged (untouched
	// relations), advanced by delta overlay, or forced to rebuild —
	// plus background re-preprocesses that swapped in.
	WALBatches    uint64 `json:"wal_batches"`
	DeltaSkips    uint64 `json:"delta_skips"`
	DeltaEpochs   uint64 `json:"delta_epochs"`
	DeltaRebuilds uint64 `json:"delta_rebuilds"`
	BGRebuilds    uint64 `json:"bg_rebuilds"`
	WALErrors     uint64 `json:"wal_errors"`
}

func handleStats(e *engine.Engine, cs *cursorStore, w http.ResponseWriter, _ *http.Request) {
	st := e.Stats()
	reply(w, statsResponse{
		Hits: st.Hits, Misses: st.Misses, Entries: st.Entries,
		Version: st.Version, Tuples: st.Tuples,
		Prepared: st.Prepared, RegistryHits: st.RegistryHits,
		Reprepares: st.Reprepares, OpenCursors: cs.open(),
		Checkpoints: st.Checkpoints, Restores: st.Restores,
		WarmStructures: st.WarmStructures,
		WALBatches:     st.WALBatches, DeltaSkips: st.DeltaSkips,
		DeltaEpochs: st.DeltaEpochs, DeltaRebuilds: st.DeltaRebuilds,
		BGRebuilds: st.BGRebuilds, WALErrors: st.WALErrors,
	})
}

func decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		fail(w, status, fmt.Errorf("serve: bad request body: %w", err))
		return false
	}
	return true
}

type errorResponse struct {
	Error string `json:"error"`
}

func fail(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func reply(w http.ResponseWriter, body any) {
	writeJSON(w, http.StatusOK, body)
}

// writeJSON encodes through a pooled buffer: one write syscall per
// response and no per-response encoder garbage. Oversized buffers are
// dropped instead of pooled.
//
// Every handler response — success or error — funnels through here, and
// the body is fully encoded into the buffer BEFORE the status line is
// written: a late encoding failure therefore still produces a clean
// status code and a structured {"error": ...} body, never a 200 with a
// truncated or mixed payload.
func writeJSON(w http.ResponseWriter, status int, body any) {
	buf := encPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(body); err != nil {
		encPool.Put(buf)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte(`{"error":"serve: response encoding failed"}` + "\n"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	if buf.Cap() <= maxPooledBuf {
		encPool.Put(buf)
	}
}

// publicErr maps per-index access errors to stable API strings.
func publicErr(err error) string {
	switch {
	case errors.Is(err, access.ErrOutOfBound):
		return "out of bound"
	case errors.Is(err, access.ErrNotAnAnswer):
		return "not an answer"
	default:
		return err.Error()
	}
}
