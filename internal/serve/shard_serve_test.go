package serve

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rankedaccess/internal/engine"
	"rankedaccess/internal/workload"
)

// TestShardedEndpointsMatchUnsharded drives /access, /range, and
// /count with shards set and cross-checks every byte of the answers
// against the unsharded responses.
func TestShardedEndpointsMatchUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	_, in := workload.TwoPath(rng, 400, 48, 0.4)
	e := engine.New(in, engine.Options{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	base := specPayload{Query: twoPath, Order: "x, y, z"}
	sharded := base
	sharded.Shards = 3

	var plain, shard accessResponse
	ks := []int64{0, 1, 5, 17, 1 << 40}
	post(t, srv, "/access", accessRequest{specPayload: base, Ks: ks}, &plain)
	post(t, srv, "/access", accessRequest{specPayload: sharded, Ks: ks}, &shard)
	if shard.Shards != 3 || shard.ShardBy == "" || shard.ShardNote != "" {
		t.Fatalf("shard echo = %+v, want 3 shards, a variable, no note", shard.shardEcho)
	}
	if plain.Shards != 0 {
		t.Fatalf("unsharded response echoes shards=%d", plain.Shards)
	}
	if plain.Total != shard.Total || plain.Mode != shard.Mode {
		t.Fatalf("plain (%d, %s) vs sharded (%d, %s)", plain.Total, plain.Mode, shard.Total, shard.Mode)
	}
	for i := range plain.Answers {
		pa, sa := plain.Answers[i], shard.Answers[i]
		if pa.Error != sa.Error || len(pa.Tuple) != len(sa.Tuple) {
			t.Fatalf("k=%d: %+v vs %+v", pa.K, pa, sa)
		}
		for j := range pa.Tuple {
			if pa.Tuple[j] != sa.Tuple[j] {
				t.Fatalf("k=%d: tuples %v vs %v", pa.K, sa.Tuple, pa.Tuple)
			}
		}
	}

	var rp, rs rangeResponse
	post(t, srv, "/range", rangeRequest{specPayload: base, K0: 3, K1: 40}, &rp)
	post(t, srv, "/range", rangeRequest{specPayload: sharded, K0: 3, K1: 40}, &rs)
	if rs.Shards != 3 {
		t.Fatalf("range shard echo = %+v", rs.shardEcho)
	}
	if len(rp.Tuples) != len(rs.Tuples) {
		t.Fatalf("range lengths %d vs %d", len(rp.Tuples), len(rs.Tuples))
	}
	for i := range rp.Tuples {
		for j := range rp.Tuples[i] {
			if rp.Tuples[i][j] != rs.Tuples[i][j] {
				t.Fatalf("range row %d: %v vs %v", i, rs.Tuples[i], rp.Tuples[i])
			}
		}
	}

	var cp, cs countResponse
	post(t, srv, "/count", countRequest{Query: twoPath}, &cp)
	post(t, srv, "/count", countRequest{Query: twoPath, Shards: 4}, &cs)
	if cp.Count != cs.Count {
		t.Fatalf("count %d vs sharded %d", cp.Count, cs.Count)
	}
	if cp.Shards != 0 || cs.Shards != 4 || cs.ShardBy == "" {
		t.Fatalf("count shard echo: plain %+v, sharded %+v", cp.shardEcho, cs.shardEcho)
	}

	// Unshardable query: the response carries the fallback note.
	selfjoin := specPayload{Query: "Q(x, y, z) :- R(x, y), R(y, z)", Shards: 2}
	var fb accessResponse
	post(t, srv, "/access", accessRequest{specPayload: selfjoin, Ks: []int64{0}}, &fb)
	if fb.Shards != 0 || fb.ShardNote == "" {
		t.Fatalf("fallback echo = %+v, want a shard_note", fb.shardEcho)
	}
}

// TestErrorStatusAndBody audits every handler's error paths: the
// status code must be set before any body byte (a JSON error body with
// the right Content-Type proves the header was not committed early) and
// the body must be a structured {"error": ...} object.
func TestErrorStatusAndBody(t *testing.T) {
	e := engine.New(nil, engine.Options{})
	if err := e.AddRows("R", [][]int64{{1, 2}, {2, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRows("S", [][]int64{{2, 1}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	cases := []struct {
		name   string
		path   string
		body   string
		status int
	}{
		{"malformed json", "/access", `{"query": `, http.StatusBadRequest},
		{"unknown field", "/access", `{"query": "Q(x) :- R(x, y)", "bogus": 1}`, http.StatusBadRequest},
		{"bad query", "/access", `{"query": "not a query", "ks": [0]}`, http.StatusBadRequest},
		{"bad order", "/access", `{"query": "Q(x, y) :- R(x, y)", "order": "nope", "ks": [0]}`, http.StatusBadRequest},
		{"bad shard_by", "/access", `{"query": "Q(x, y) :- R(x, y)", "shards": 2, "shard_by": "zzz", "ks": [0]}`, http.StatusBadRequest},
		{"load without relation", "/load", `{"rows": [[1, 2]]}`, http.StatusBadRequest},
		{"load arity mismatch", "/load", `{"relation": "R", "rows": [[1, 2, 3]]}`, http.StatusBadRequest},
		{"range too wide", "/range", `{"query": "Q(x, y) :- R(x, y)", "k0": 0, "k1": 99999999}`, http.StatusBadRequest},
		{"range out of bounds", "/range", `{"query": "Q(x, y) :- R(x, y)", "k0": 0, "k1": 1000}`, http.StatusRequestedRangeNotSatisfiable},
		{"sharded range out of bounds", "/range", `{"query": "Q(x, y) :- R(x, y)", "shards": 2, "k0": 0, "k1": 1000}`, http.StatusRequestedRangeNotSatisfiable},
		{"select out of bounds", "/select", `{"query": "Q(x, y) :- R(x, y)", "k": 1000}`, http.StatusNotFound},
		{"bad classify problem", "/classify", `{"query": "Q(x, y) :- R(x, y)", "problem": "nonsense"}`, http.StatusBadRequest},
		{"bad count query", "/count", `{"query": "broken("}`, http.StatusBadRequest},
		{"bad count shard_by", "/count", `{"query": "Q(x, y) :- R(x, y)", "shards": 2, "shard_by": "zzz"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := srv.Client().Post(srv.URL+tc.path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.status)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type = %q, want application/json", ct)
			}
			var body errorResponse
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("error body is not JSON: %v", err)
			}
			if body.Error == "" {
				t.Fatal("error body has no error message")
			}
		})
	}
}
