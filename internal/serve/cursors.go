package serve

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"

	"rankedaccess/internal/engine"
)

// defaultMaxCursors bounds concurrently open server-side cursors; the
// least recently used cursor is evicted when a new one would exceed it
// (a cursor is one scan position — recreating an evicted one is a
// single POST).
const defaultMaxCursors = 1024

// serverCursor is one client-visible cursor: an opaque id bound to an
// engine cursor. Its mutex serializes concurrent /next calls on the
// same id (each call must observe and advance one scan position);
// distinct cursors never contend.
type serverCursor struct {
	id    string
	query string // registered query name, echoed in responses

	mu  sync.Mutex
	cur *engine.Cursor

	lastUse uint64 // store sequence number at last touch, for LRU eviction
}

// cursorStore issues and resolves opaque cursor tokens.
type cursorStore struct {
	mu  sync.Mutex
	m   map[string]*serverCursor
	seq uint64
	max int
}

func newCursorStore(max int) *cursorStore {
	if max <= 0 {
		max = defaultMaxCursors
	}
	return &cursorStore{m: make(map[string]*serverCursor), max: max}
}

// newToken returns an unguessable cursor id (a cursor grants read
// access to its query's answers, so ids must not be enumerable).
func newToken() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("serve: cursor token: %w", err)
	}
	return "c" + hex.EncodeToString(b[:]), nil
}

// create registers a cursor and returns it, evicting the least
// recently used cursor when the store is full.
func (cs *cursorStore) create(query string, cur *engine.Cursor) (*serverCursor, error) {
	id, err := newToken()
	if err != nil {
		return nil, err
	}
	sc := &serverCursor{id: id, query: query, cur: cur}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for len(cs.m) >= cs.max {
		var oldest *serverCursor
		for _, c := range cs.m {
			if oldest == nil || c.lastUse < oldest.lastUse {
				oldest = c
			}
		}
		delete(cs.m, oldest.id)
	}
	cs.seq++
	sc.lastUse = cs.seq
	cs.m[id] = sc
	return sc, nil
}

// get resolves an id, refreshing its LRU stamp; nil when unknown (or
// already evicted/closed).
func (cs *cursorStore) get(id string) *serverCursor {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	sc := cs.m[id]
	if sc != nil {
		cs.seq++
		sc.lastUse = cs.seq
	}
	return sc
}

// remove closes an id, reporting whether it was open.
func (cs *cursorStore) remove(id string) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	_, ok := cs.m[id]
	delete(cs.m, id)
	return ok
}

// open returns the number of open cursors.
func (cs *cursorStore) open() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return len(cs.m)
}
