package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"rankedaccess/internal/values"
)

func TestV1WriteBatch(t *testing.T) {
	srv, e := v1Server(t, 256, 7)
	info := register(t, srv, "w", twoPath, "x, y, z")
	v0 := e.Version()

	// One atomic batch across two relations: inserts that join into new
	// answers plus a delete, published as a single new version.
	var wr writeResponse
	resp := post(t, srv, "/v1/write", writeRequest{Writes: []writeEntry{
		{Relation: "R", Insert: [][]values.Value{{90001, 70007}, {90002, 70007}}},
		{Relation: "S", Insert: [][]values.Value{{70007, 1}, {70007, 2}}, Delete: [][]values.Value{{70007, 999}}},
	}}, &wr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("write: status %d", resp.StatusCode)
	}
	if wr.Version != v0+1 || wr.Inserted != 4 || wr.Deleted != 1 {
		t.Fatalf("write response = %+v, want version %d, 4 inserted, 1 deleted", wr, v0+1)
	}

	// The registered query sees the joined rows: the two new R rows each
	// match the two new S rows.
	var cnt countResponse
	post(t, srv, "/v1/queries/w/count", struct{}{}, &cnt)
	if cnt.Count != info.Total+4 {
		t.Fatalf("count after write = %d, want %d", cnt.Count, info.Total+4)
	}

	// The catch-up was a delta overlay, not a rebuild, and the batch is
	// counted.
	var st statsResponse
	resp2, err := srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.WALBatches != 1 || st.DeltaEpochs < 1 || st.DeltaRebuilds != 0 {
		t.Fatalf("write-path stats = %+v", st)
	}

	// An empty batch publishes nothing.
	var empty writeResponse
	post(t, srv, "/v1/write", writeRequest{}, &empty)
	if empty.Version != wr.Version || empty.Inserted != 0 {
		t.Fatalf("empty write = %+v, want version %d", empty, wr.Version)
	}

	// Ragged rows in one entry are rejected before anything applies.
	bad := postRaw(t, srv, "/v1/write", writeRequest{Writes: []writeEntry{
		{Relation: "R", Insert: [][]values.Value{{1, 2}, {3}}},
	}})
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("ragged write: %d, want 400", bad.StatusCode)
	}
	// A wrong-arity batch against an existing relation is rejected too.
	bad2 := postRaw(t, srv, "/v1/write", writeRequest{Writes: []writeEntry{
		{Relation: "R", Insert: [][]values.Value{{1, 2, 3}}},
	}})
	if bad2.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-arity write: %d, want 400", bad2.StatusCode)
	}
	if e.Version() != wr.Version {
		t.Fatalf("rejected writes moved the version: %d, want %d", e.Version(), wr.Version)
	}
}
