package serve

import (
	"sync"
	"testing"
)

// TestCursorStoreConcurrentStress hammers one small store from many
// goroutines so -race can see create/get/remove/evict interleavings.
// The store invariants under fire: open() never exceeds max, every id
// a goroutine created resolves until someone removes or evicts it, and
// remove reports true exactly once per id.
func TestCursorStoreConcurrentStress(t *testing.T) {
	const (
		workers = 8
		iters   = 200
		max     = 4 // tiny: force constant LRU eviction under contention
	)
	cs := newCursorStore(max)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids := make([]string, 0, iters)
			for i := 0; i < iters; i++ {
				sc, err := cs.create("q", nil)
				if err != nil {
					t.Errorf("create: %v", err)
					return
				}
				ids = append(ids, sc.id)
				// Touch a mix of our own live and likely-evicted ids.
				cs.get(sc.id)
				cs.get(ids[i/2])
				if n := cs.open(); n > max {
					t.Errorf("open() = %d, exceeds max %d", n, max)
					return
				}
				// Remove every other cursor we made; double-remove of an
				// already-evicted id must just report false, not panic.
				if i%2 == 1 {
					cs.remove(ids[i-1])
					cs.remove(ids[i-1])
				}
			}
		}()
	}
	wg.Wait()
	if n := cs.open(); n > max {
		t.Fatalf("open() = %d after stress, exceeds max %d", n, max)
	}
	// The survivors still resolve and can be drained out.
	survivors := make([]string, 0, max)
	for id := range cs.m {
		survivors = append(survivors, id)
	}
	for _, id := range survivors {
		if cs.get(id) == nil {
			t.Fatalf("surviving cursor %s does not resolve", id)
		}
		if !cs.remove(id) {
			t.Fatalf("removing surviving cursor %s reported false", id)
		}
	}
	if n := cs.open(); n != 0 {
		t.Fatalf("open() = %d after draining, want 0", n)
	}
}
