// reqlog.go is the structured request-logging half of the serve
// layer's observability: one slog record per request (method, path,
// endpoint, status, bytes, latency, client, request id), emitted by the
// instrument middleware when Config.RequestLog is set.
//
// Request ids are adopted from the client's X-Request-ID header when it
// is short and log-safe, minted otherwise, always echoed back in the
// response header, and propagated via context (internal/reqid) so
// engine-level events — synchronous builds, background rebuilds, WAL
// failures — join to the request that triggered them.
//
// Under load the log itself must not become the bottleneck: past
// Config.LogMaxPerSec records in one wall-clock second, only every 16th
// further record is kept, and the drops are counted in
// ra_http_request_logs_sampled_out_total so the gap is visible.
package serve

import (
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// defaultLogMaxPerSec bounds request-log volume when Config.LogMaxPerSec
// is unset.
const defaultLogMaxPerSec = 500

// sampleKeepEvery is the keep rate past the per-second budget.
const sampleKeepEvery = 16

// ridPrefix distinguishes ids across processes; ridSeq within one.
var (
	ridPrefix = func() string {
		var b [6]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "ra"
		}
		return hex.EncodeToString(b[:])
	}()
	ridSeq atomic.Uint64
)

// incomingID adopts the client's X-Request-ID when it is short and
// log-safe (one record stays one line), minting a fresh id otherwise.
func incomingID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); id != "" && len(id) <= 64 && cleanID(id) {
		return id
	}
	return ridPrefix + "-" + strconv.FormatUint(ridSeq.Add(1), 36)
}

// cleanID accepts ids made only of word characters and -_.: — anything
// else (spaces, quotes, control bytes) gets replaced, not trusted.
func cleanID(id string) bool {
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.', c == ':':
		default:
			return false
		}
	}
	return true
}

// logSampler bounds log records per wall-clock second. The second
// rollover is a racy CAS on purpose: a handful of records misattributed
// across a boundary is harmless, a mutex on every request is not.
type logSampler struct {
	max int64 // per-second budget; <= 0 disables sampling
	sec atomic.Int64
	n   atomic.Int64
}

func (ls *logSampler) admit(now time.Time) bool {
	if ls.max <= 0 {
		return true
	}
	sec := now.Unix()
	if old := ls.sec.Load(); old != sec {
		if ls.sec.CompareAndSwap(old, sec) {
			ls.n.Store(0)
		}
	}
	n := ls.n.Add(1)
	return n <= ls.max || (n-ls.max)%sampleKeepEvery == 1
}

// logRequest emits the per-request record; called from the instrument
// middleware's defer, so every exit path — including sheds and panics —
// produces exactly one record (or one sampled-out count).
func (s *server) logRequest(r *http.Request, endpoint, id, traceID string, status int, bytes int64, d time.Duration) {
	if !s.logSamp.admit(time.Now()) {
		s.mets.logsSampledOut.Inc()
		return
	}
	level := slog.LevelInfo
	switch {
	case status >= 500:
		level = slog.LevelError
	case status >= 400:
		level = slog.LevelWarn
	}
	attrs := make([]slog.Attr, 0, 9)
	attrs = append(attrs,
		slog.String("request_id", id),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.String("endpoint", endpoint),
		slog.Int("status", status),
		slog.Int64("bytes", bytes),
		slog.Duration("duration", d),
		slog.String("client", clientKey(r)),
	)
	if traceID != "" {
		attrs = append(attrs, slog.String("trace_id", traceID))
	}
	s.reqLog.LogAttrs(r.Context(), level, "request", attrs...)
}
