package cq

import (
	"strings"
	"testing"
)

func TestParseTwoPath(t *testing.T) {
	q, err := Parse("Q(x, y, z) :- R(x, y), S(y, z)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "Q" || len(q.Head) != 3 || len(q.Atoms) != 2 {
		t.Fatalf("unexpected structure: %v", q)
	}
	if !q.IsFull() {
		t.Fatal("full query misclassified")
	}
	if !q.IsSelfJoinFree() {
		t.Fatal("self-join-free query misclassified")
	}
}

func TestParseProjection(t *testing.T) {
	q := MustParse("Q(x, z) :- R(x, y), S(y, z).")
	if q.IsFull() {
		t.Fatal("projection query misclassified as full")
	}
	if q.IsBoolean() {
		t.Fatal("non-Boolean query misclassified")
	}
	y, ok := q.VarByName("y")
	if !ok {
		t.Fatal("y must be interned")
	}
	if q.Free()&(1<<uint(y)) != 0 {
		t.Fatal("y must be existential")
	}
}

func TestParseBoolean(t *testing.T) {
	q := MustParse("Q() :- R(x, y), S(y, x)")
	if !q.IsBoolean() {
		t.Fatal("Boolean query misclassified")
	}
}

func TestParseSelfJoin(t *testing.T) {
	q := MustParse("Q(x, y, z) :- R(x, y), R(y, z)")
	if q.IsSelfJoinFree() {
		t.Fatal("self-join not detected")
	}
}

func TestParseRepeatedVarInAtom(t *testing.T) {
	q := MustParse("Q(x) :- R(x, x)")
	if !q.HasRepeatedVarInAtom() {
		t.Fatal("repeated variable in atom not detected")
	}
	q2 := MustParse("Q(x, y) :- R(x, y)")
	if q2.HasRepeatedVarInAtom() {
		t.Fatal("false positive repeated variable")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"Q(x)",
		"Q(x) : R(x)",
		"Q(x) :- ",
		"Q(x) :- R(x,)",
		"Q(x) :- R(x) extra",
		"Q(x) :- R(y)",      // head var not in body
		"Q(x, x) :- R(x)",   // duplicate head var
		"Q(1x) :- R(1x)",    // bad identifier
		"Q(x) :- R(x), (y)", // missing relation symbol
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	inputs := []string{
		"Q(x, y, z) :- R(x, y), S(y, z)",
		"Q(x, z) :- R(x, y), S(y, z)",
		"Q() :- R(x)",
		"Visits_Cases(person, age, city, date, #cases) :- Visits(person, age, city), Cases(city, date, #cases)",
	}
	for _, in := range inputs {
		q := MustParse(in)
		q2 := MustParse(q.String())
		if q2.String() != q.String() {
			t.Errorf("round trip changed: %q -> %q", q.String(), q2.String())
		}
	}
}

func TestEdgeSets(t *testing.T) {
	q := MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	es := q.EdgeSets()
	x, _ := q.VarByName("x")
	y, _ := q.VarByName("y")
	z, _ := q.VarByName("z")
	if es[0] != (1<<uint(x))|(1<<uint(y)) {
		t.Fatalf("edge 0 = %b", es[0])
	}
	if es[1] != (1<<uint(y))|(1<<uint(z)) {
		t.Fatalf("edge 1 = %b", es[1])
	}
	if q.AllVars() != es[0]|es[1] {
		t.Fatal("AllVars mismatch")
	}
}

func TestClone(t *testing.T) {
	q := MustParse("Q(x, z) :- R(x, y), S(y, z)")
	c := q.Clone()
	c.AddAtom("T", "z", "w")
	c.SetHead("x")
	if len(q.Atoms) != 2 || len(q.Head) != 2 {
		t.Fatal("clone mutated original")
	}
	if _, ok := q.VarByName("w"); ok {
		t.Fatal("clone shared variable table")
	}
}

func TestVarNamesOf(t *testing.T) {
	q := MustParse("Q(x, z) :- R(x, y), S(y, z)")
	names := q.VarNamesOf(q.Head)
	if strings.Join(names, ",") != "x,z" {
		t.Fatalf("names = %v", names)
	}
}

func TestValidateNoAtoms(t *testing.T) {
	q := NewQuery("Q")
	if err := q.Validate(); err == nil {
		t.Fatal("query with no atoms must be invalid")
	}
}
