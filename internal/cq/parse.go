package cq

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses the textual CQ form, e.g.
//
//	Q(x, z) :- R(x, y), S(y, z)
//
// A trailing period is allowed. Head and atom argument lists may be empty
// (Boolean queries, nullary relations). Identifiers are letters, digits,
// underscores and '#', starting with a letter, underscore or '#'.
func Parse(input string) (*Query, error) {
	p := &parser{src: input}
	q, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("cq: parse %q: %w", input, err)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error; for tests and fixed catalogs.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	src string
	pos int
}

func (p *parser) parseQuery() (*Query, error) {
	name, err := p.ident()
	if err != nil {
		return nil, fmt.Errorf("head symbol: %w", err)
	}
	q := NewQuery(name)
	headVars, err := p.argList()
	if err != nil {
		return nil, fmt.Errorf("head: %w", err)
	}
	p.skipSpace()
	if !p.literal(":-") {
		return nil, p.errf("expected ':-'")
	}
	for {
		rel, err := p.ident()
		if err != nil {
			return nil, fmt.Errorf("atom: %w", err)
		}
		args, err := p.argList()
		if err != nil {
			return nil, fmt.Errorf("atom %s: %w", rel, err)
		}
		q.AddAtom(rel, args...)
		p.skipSpace()
		if !p.literal(",") {
			break
		}
	}
	p.skipSpace()
	p.literal(".")
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, p.errf("trailing input")
	}
	// Head variables are interned after the body so that unknown head
	// variables are detected by Validate rather than silently added...
	// except interning is what defines them. Intern now; Validate checks
	// occurrence in the body.
	q.SetHead(headVars...)
	return q, nil
}

func (p *parser) argList() ([]string, error) {
	p.skipSpace()
	if !p.literal("(") {
		return nil, p.errf("expected '('")
	}
	var args []string
	p.skipSpace()
	if p.literal(")") {
		return args, nil
	}
	for {
		id, err := p.ident()
		if err != nil {
			return nil, err
		}
		args = append(args, id)
		p.skipSpace()
		if p.literal(")") {
			return args, nil
		}
		if !p.literal(",") {
			return nil, p.errf("expected ',' or ')'")
		}
	}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) literal(s string) bool {
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '#' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (p *parser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	if p.pos >= len(p.src) || !isIdentStart(p.src[p.pos]) {
		return "", p.errf("expected identifier")
	}
	for p.pos < len(p.src) && isIdentPart(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos], nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}
