// Package cq models conjunctive queries (CQs).
//
// A CQ has the form
//
//	Q(x, z) :- R(x, y), S(y, z)
//
// with a head listing the free variables and a body of atoms over a
// relational schema. Variables are interned per query as small integer
// ids so that downstream machinery (hypergraphs, join trees, orders) can
// use bitsets.
package cq

import (
	"fmt"
	"strings"
)

// MaxVars bounds the number of distinct variables in a query. Queries are
// constant-size in the paper's complexity model; 64 lets variable sets be
// single-word bitsets.
const MaxVars = 64

// VarID identifies a variable within one Query (dense, starting at 0).
type VarID int

// Atom is one relational atom R(x1, ..., xk) of a query body.
type Atom struct {
	// Rel is the relation symbol.
	Rel string
	// Vars lists the variables in positional order. A variable may appear
	// more than once (e.g. R(x, x)).
	Vars []VarID
}

// Query is a conjunctive query.
type Query struct {
	// Name is the head symbol (often "Q").
	Name string
	// Head lists the free variables in head order.
	Head []VarID
	// Atoms is the query body.
	Atoms []Atom

	varNames []string
	varIDs   map[string]VarID
}

// NewQuery returns an empty query with the given head symbol. Variables
// are added with Var, atoms with AddAtom, and the head with SetHead.
func NewQuery(name string) *Query {
	return &Query{Name: name, varIDs: make(map[string]VarID)}
}

// Var interns a variable name and returns its id.
func (q *Query) Var(name string) VarID {
	if id, ok := q.varIDs[name]; ok {
		return id
	}
	if len(q.varNames) >= MaxVars {
		panic(fmt.Sprintf("cq: more than %d variables", MaxVars))
	}
	id := VarID(len(q.varNames))
	q.varIDs[name] = id
	q.varNames = append(q.varNames, name)
	return id
}

// VarByName returns the id of a previously interned variable.
func (q *Query) VarByName(name string) (VarID, bool) {
	id, ok := q.varIDs[name]
	return id, ok
}

// VarName returns the name of variable v.
func (q *Query) VarName(v VarID) string {
	if int(v) < 0 || int(v) >= len(q.varNames) {
		return fmt.Sprintf("?%d", v)
	}
	return q.varNames[v]
}

// NumVars returns the number of distinct variables.
func (q *Query) NumVars() int { return len(q.varNames) }

// AddAtom appends an atom with the given relation symbol and variable
// names (interning new names).
func (q *Query) AddAtom(rel string, varNames ...string) {
	vars := make([]VarID, len(varNames))
	for i, n := range varNames {
		vars[i] = q.Var(n)
	}
	q.Atoms = append(q.Atoms, Atom{Rel: rel, Vars: vars})
}

// SetHead declares the free variables by name. Every head variable must
// occur in some atom; Validate enforces this.
func (q *Query) SetHead(varNames ...string) {
	q.Head = q.Head[:0]
	for _, n := range varNames {
		q.Head = append(q.Head, q.Var(n))
	}
}

// Free returns the set of free variables as a bitset.
func (q *Query) Free() uint64 {
	var s uint64
	for _, v := range q.Head {
		s |= 1 << uint(v)
	}
	return s
}

// AllVars returns the set of all variables occurring in atoms.
func (q *Query) AllVars() uint64 {
	var s uint64
	for _, a := range q.Atoms {
		for _, v := range a.Vars {
			s |= 1 << uint(v)
		}
	}
	return s
}

// AtomVars returns the set of variables of atom i.
func (q *Query) AtomVars(i int) uint64 {
	var s uint64
	for _, v := range q.Atoms[i].Vars {
		s |= 1 << uint(v)
	}
	return s
}

// EdgeSets returns one bitset of variables per atom, in atom order.
func (q *Query) EdgeSets() []uint64 {
	out := make([]uint64, len(q.Atoms))
	for i := range q.Atoms {
		out[i] = q.AtomVars(i)
	}
	return out
}

// IsFull reports whether every variable is free.
func (q *Query) IsFull() bool { return q.Free() == q.AllVars() }

// IsBoolean reports whether the query has no free variables.
func (q *Query) IsBoolean() bool { return len(q.Head) == 0 }

// IsSelfJoinFree reports whether no relation symbol repeats in the body.
func (q *Query) IsSelfJoinFree() bool {
	seen := make(map[string]struct{}, len(q.Atoms))
	for _, a := range q.Atoms {
		if _, ok := seen[a.Rel]; ok {
			return false
		}
		seen[a.Rel] = struct{}{}
	}
	return true
}

// HasRepeatedVarInAtom reports whether some atom mentions a variable at
// two positions (e.g. R(x, x)).
func (q *Query) HasRepeatedVarInAtom() bool {
	for _, a := range q.Atoms {
		seen := uint64(0)
		for _, v := range a.Vars {
			bit := uint64(1) << uint(v)
			if seen&bit != 0 {
				return true
			}
			seen |= bit
		}
	}
	return false
}

// Validate checks structural well-formedness: at least one atom, head
// variables occur in the body, and no duplicate head variables.
func (q *Query) Validate() error {
	if len(q.Atoms) == 0 {
		return fmt.Errorf("cq: query %s has no atoms", q.Name)
	}
	body := q.AllVars()
	seen := uint64(0)
	for _, v := range q.Head {
		bit := uint64(1) << uint(v)
		if body&bit == 0 {
			return fmt.Errorf("cq: head variable %s does not occur in the body", q.VarName(v))
		}
		if seen&bit != 0 {
			return fmt.Errorf("cq: head variable %s repeats", q.VarName(v))
		}
		seen |= bit
	}
	return nil
}

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	c := NewQuery(q.Name)
	c.varNames = append([]string(nil), q.varNames...)
	for n, id := range q.varIDs {
		c.varIDs[n] = id
	}
	c.Head = append([]VarID(nil), q.Head...)
	c.Atoms = make([]Atom, len(q.Atoms))
	for i, a := range q.Atoms {
		c.Atoms[i] = Atom{Rel: a.Rel, Vars: append([]VarID(nil), a.Vars...)}
	}
	return c
}

// String renders the query in the parseable text form.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString(q.Name)
	b.WriteByte('(')
	for i, v := range q.Head {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(q.VarName(v))
	}
	b.WriteString(") :- ")
	for i, a := range q.Atoms {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Rel)
		b.WriteByte('(')
		for j, v := range a.Vars {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(q.VarName(v))
		}
		b.WriteByte(')')
	}
	return b.String()
}

// VarNamesOf maps a slice of ids to names.
func (q *Query) VarNamesOf(vars []VarID) []string {
	out := make([]string, len(vars))
	for i, v := range vars {
		out[i] = q.VarName(v)
	}
	return out
}
