package trace

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Exporter ships kept traces as OTLP/JSON over HTTP (the
// vendor-neutral encoding any OpenTelemetry collector accepts on
// POST /v1/traces), encoded with nothing but encoding/json. Delivery
// is best-effort: Enqueue never blocks the request path — a full
// queue drops the trace — and a background goroutine batches posts.
type Exporter struct {
	url     string
	service string
	client  *http.Client
	ch      chan *Trace

	mu      sync.Mutex
	done    chan struct{}
	dropped uint64
	sent    uint64
}

// exportQueue bounds the in-flight buffer between the request path
// and the posting goroutine.
const exportQueue = 256

// NewExporter starts an exporter posting to url (an OTLP/HTTP traces
// endpoint, e.g. http://collector:4318/v1/traces), stamping every
// resource with service.name=service. Close flushes and stops it.
func NewExporter(url, service string) *Exporter {
	e := &Exporter{
		url:     url,
		service: service,
		client:  &http.Client{Timeout: 5 * time.Second},
		ch:      make(chan *Trace, exportQueue),
		done:    make(chan struct{}),
	}
	go e.run()
	return e
}

// Enqueue hands a trace to the posting goroutine, dropping it when
// the queue is full. Safe from any goroutine; never blocks.
func (e *Exporter) Enqueue(t *Trace) {
	if e == nil || t == nil {
		return
	}
	select {
	case e.ch <- t:
	default:
		e.mu.Lock()
		e.dropped++
		e.mu.Unlock()
	}
}

// Stats reports traces posted and traces dropped on a full queue.
func (e *Exporter) Stats() (sent, dropped uint64) {
	if e == nil {
		return 0, 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sent, e.dropped
}

// Close stops the exporter after draining whatever is queued.
func (e *Exporter) Close() {
	if e == nil {
		return
	}
	close(e.ch)
	<-e.done
}

func (e *Exporter) run() {
	defer close(e.done)
	for t := range e.ch {
		// Drain opportunistically so bursts post as one batch.
		batch := []*Trace{t}
		for len(batch) < 32 {
			select {
			case next, ok := <-e.ch:
				if !ok {
					e.post(batch)
					return
				}
				batch = append(batch, next)
			default:
				goto send
			}
		}
	send:
		e.post(batch)
	}
}

func (e *Exporter) post(batch []*Trace) {
	body, err := json.Marshal(otlpPayload(e.service, batch))
	if err != nil {
		return
	}
	resp, err := e.client.Post(e.url, "application/json", bytes.NewReader(body))
	if err != nil {
		e.mu.Lock()
		e.dropped += uint64(len(batch))
		e.mu.Unlock()
		return
	}
	resp.Body.Close()
	e.mu.Lock()
	if resp.StatusCode/100 == 2 {
		e.sent += uint64(len(batch))
	} else {
		e.dropped += uint64(len(batch))
	}
	e.mu.Unlock()
}

// otlpPayload builds the OTLP/JSON ExportTraceServiceRequest shape.
// Field names and conventions (hex ids, u64 nanos as decimal strings,
// kind enums INTERNAL=1/SERVER=2/CLIENT=3, status code ERROR=2)
// follow the OTLP 1.x JSON mapping.
func otlpPayload(service string, batch []*Trace) map[string]any {
	spans := make([]map[string]any, 0, len(batch)*4)
	for _, t := range batch {
		for i := range t.Spans {
			spans = append(spans, otlpSpan(t.ID, &t.Spans[i]))
		}
	}
	return map[string]any{
		"resourceSpans": []map[string]any{{
			"resource": map[string]any{
				"attributes": []map[string]any{{
					"key":   "service.name",
					"value": map[string]any{"stringValue": service},
				}},
			},
			"scopeSpans": []map[string]any{{
				"scope": map[string]any{"name": "rankedaccess/internal/trace"},
				"spans": spans,
			}},
		}},
	}
}

func otlpSpan(tid TraceID, sp *SpanData) map[string]any {
	kind := 1 // INTERNAL
	switch sp.Kind {
	case KindServer:
		kind = 2
	case KindClient:
		kind = 3
	}
	m := map[string]any{
		"traceId":           tid.String(),
		"spanId":            sp.ID.String(),
		"name":              sp.Name,
		"kind":              kind,
		"startTimeUnixNano": strconv.FormatInt(sp.Start, 10),
		"endTimeUnixNano":   strconv.FormatInt(sp.Start+sp.Dur, 10),
	}
	if !sp.Parent.IsZero() {
		m["parentSpanId"] = sp.Parent.String()
	}
	if len(sp.Attrs) > 0 {
		m["attributes"] = otlpAttrs(sp.Attrs)
	}
	if len(sp.Events) > 0 {
		evs := make([]map[string]any, 0, len(sp.Events))
		for _, ev := range sp.Events {
			em := map[string]any{
				"name":         ev.Name,
				"timeUnixNano": strconv.FormatInt(ev.At, 10),
			}
			if len(ev.Attrs) > 0 {
				em["attributes"] = otlpAttrs(ev.Attrs)
			}
			evs = append(evs, em)
		}
		m["events"] = evs
	}
	if sp.Err != "" {
		m["status"] = map[string]any{"code": 2, "message": sp.Err}
	}
	return m
}

func otlpAttrs(attrs []Attr) []map[string]any {
	out := make([]map[string]any, 0, len(attrs))
	for _, a := range attrs {
		var v map[string]any
		switch a.Kind {
		case AttrInt:
			v = map[string]any{"intValue": strconv.FormatInt(a.Num, 10)}
		case AttrBool:
			v = map[string]any{"boolValue": a.Num != 0}
		default:
			v = map[string]any{"stringValue": a.Str}
		}
		out = append(out, map[string]any{"key": a.Key, "value": v})
	}
	return out
}
