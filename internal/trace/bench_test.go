package trace

import (
	"context"
	"testing"
	"time"
)

func BenchmarkStartEndUnsampled(b *testing.B) {
	tr := New(Options{Rate: 0, Slow: time.Second, Buffer: 16})
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := tr.Start(ctx, "bench", KindServer)
		sp.End()
	}
}

func BenchmarkNilTracerStartEnd(b *testing.B) {
	var tr *Tracer
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := tr.Start(ctx, "bench", KindServer)
		sp.End()
	}
}
