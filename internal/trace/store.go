package trace

import "sync/atomic"

// Trace is one kept local trace: every span this process recorded
// under one trace id, sorted by start time (the local root first).
type Trace struct {
	ID TraceID
	// Reason says why the trace was kept: "head" (rate sampler),
	// "error" (some span failed), or "slow" (root hit the tail cut).
	Reason string
	Spans  []SpanData
	// Dropped counts spans lost to the per-trace buffer cap.
	Dropped int
}

// Root returns the local root span (the earliest-starting one).
func (t *Trace) Root() *SpanData {
	if len(t.Spans) == 0 {
		return nil
	}
	return &t.Spans[0]
}

// Store is a lock-free ring buffer of kept traces: writers claim slots
// with one atomic add and publish with one atomic pointer store, so a
// burst of kept traces never contends on a mutex in the request path.
// Readers snapshot whatever is published; a trace may be overwritten
// between listing and lookup, which the explorer reports as not found.
type Store struct {
	slots []atomic.Pointer[Trace]
	head  atomic.Uint64
}

// NewStore builds a ring holding up to n traces (n ≥ 1 forced).
func NewStore(n int) *Store {
	if n < 1 {
		n = 1
	}
	return &Store{slots: make([]atomic.Pointer[Trace], n)}
}

// Add publishes a trace, overwriting the oldest slot once full.
func (s *Store) Add(t *Trace) {
	if s == nil || t == nil {
		return
	}
	i := s.head.Add(1) - 1
	s.slots[i%uint64(len(s.slots))].Store(t)
}

// Snapshot returns the published traces, newest first.
func (s *Store) Snapshot() []*Trace {
	if s == nil {
		return nil
	}
	n := uint64(len(s.slots))
	head := s.head.Load()
	if head > n {
		head = n
	}
	out := make([]*Trace, 0, head)
	// Walk backward from the most recent claim; slots may still be
	// publishing (nil) or re-published out of order — skip holes.
	start := s.head.Load()
	for k := uint64(0); k < n && uint64(len(out)) < n; k++ {
		i := (start + n - 1 - k) % n
		if t := s.slots[i].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Get returns the stored trace with the given id, or nil. A process
// may hold several slices of one distributed trace (a shard node
// serving the prepare, rank, and access RPCs of one request commits
// each server span's subtree separately); Get merges them into a
// single trace, spans re-sorted by start time, so the waterfall shows
// everything this process did under the id.
func (s *Store) Get(id TraceID) *Trace {
	if s == nil {
		return nil
	}
	var found []*Trace
	for i := range s.slots {
		if t := s.slots[i].Load(); t != nil && t.ID == id {
			found = append(found, t)
		}
	}
	switch len(found) {
	case 0:
		return nil
	case 1:
		return found[0]
	}
	merged := &Trace{ID: id, Reason: found[0].Reason}
	for _, t := range found {
		merged.Spans = append(merged.Spans, t.Spans...)
		merged.Dropped += t.Dropped
		// "error" outranks "slow" outranks "head": surface the most
		// alarming keep reason of any slice.
		if reasonRank(t.Reason) > reasonRank(merged.Reason) {
			merged.Reason = t.Reason
		}
	}
	sortSpans(merged.Spans)
	return merged
}

func reasonRank(r string) int {
	switch r {
	case "error":
		return 3
	case "slow":
		return 2
	case "head":
		return 1
	}
	return 0
}

// Len counts currently published traces.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	n := 0
	for i := range s.slots {
		if s.slots[i].Load() != nil {
			n++
		}
	}
	return n
}
