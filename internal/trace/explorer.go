package trace

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
)

// explorer serves the trace store as JSON on the private ops listener:
//
//	GET /debug/traces                  — list, newest first
//	GET /debug/traces?sort=dur         — list, slowest root first
//	GET /debug/traces?limit=N          — cap the list (default 100)
//	GET /debug/traces?id=<32 hex>      — one trace as a waterfall
type explorer struct{ store *Store }

// Handler returns the /debug/traces explorer over this store.
func (s *Store) Handler() http.Handler { return explorer{store: s} }

// listEntry is one row of the trace list.
type listEntry struct {
	ID      string `json:"id"`
	Root    string `json:"root"`
	Kind    string `json:"kind"`
	Start   int64  `json:"start_unix_nano"`
	DurUS   int64  `json:"duration_us"`
	Spans   int    `json:"spans"`
	Reason  string `json:"reason"`
	Err     string `json:"error,omitempty"`
	Dropped int    `json:"dropped_spans,omitempty"`
}

// waterfallSpan is one span of the per-trace view; offsets are
// relative to the trace's earliest start so a client can draw bars
// without timestamp math.
type waterfallSpan struct {
	Name     string           `json:"name"`
	ID       string           `json:"id"`
	Parent   string           `json:"parent,omitempty"`
	Kind     string           `json:"kind"`
	Start    int64            `json:"start_unix_nano"`
	OffsetUS int64            `json:"offset_us"`
	DurUS    int64            `json:"duration_us"`
	Err      string           `json:"error,omitempty"`
	Attrs    map[string]any   `json:"attrs,omitempty"`
	Events   []waterfallEvent `json:"events,omitempty"`
}

type waterfallEvent struct {
	Name     string         `json:"name"`
	OffsetUS int64          `json:"offset_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		switch a.Kind {
		case AttrInt:
			m[a.Key] = a.Num
		case AttrBool:
			m[a.Key] = a.Num != 0
		default:
			m[a.Key] = a.Str
		}
	}
	return m
}

func (e explorer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if id := r.URL.Query().Get("id"); id != "" {
		e.serveTrace(w, id)
		return
	}
	limit := 100
	if v := r.URL.Query().Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			limit = n
		}
	}
	traces := e.store.Snapshot()
	entries := make([]listEntry, 0, len(traces))
	for _, t := range traces {
		root := t.Root()
		if root == nil {
			continue
		}
		entries = append(entries, listEntry{
			ID:      t.ID.String(),
			Root:    root.Name,
			Kind:    root.Kind.String(),
			Start:   root.Start,
			DurUS:   root.Dur / 1e3,
			Spans:   len(t.Spans),
			Reason:  t.Reason,
			Err:     root.Err,
			Dropped: t.Dropped,
		})
	}
	if r.URL.Query().Get("sort") == "dur" {
		sort.SliceStable(entries, func(i, j int) bool { return entries[i].DurUS > entries[j].DurUS })
	}
	if len(entries) > limit {
		entries = entries[:limit]
	}
	json.NewEncoder(w).Encode(map[string]any{"traces": entries})
}

func (e explorer) serveTrace(w http.ResponseWriter, id string) {
	tid, ok := ParseTraceID(id)
	if !ok {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "malformed trace id"})
		return
	}
	t := e.store.Get(tid)
	if t == nil {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "trace not found (evicted or never stored)"})
		return
	}
	base := int64(0)
	if root := t.Root(); root != nil {
		base = root.Start
	}
	spans := make([]waterfallSpan, 0, len(t.Spans))
	for i := range t.Spans {
		sp := &t.Spans[i]
		ws := waterfallSpan{
			Name:     sp.Name,
			ID:       sp.ID.String(),
			Kind:     sp.Kind.String(),
			Start:    sp.Start,
			OffsetUS: (sp.Start - base) / 1e3,
			DurUS:    sp.Dur / 1e3,
			Err:      sp.Err,
			Attrs:    attrMap(sp.Attrs),
		}
		if !sp.Parent.IsZero() {
			ws.Parent = sp.Parent.String()
		}
		for _, ev := range sp.Events {
			ws.Events = append(ws.Events, waterfallEvent{
				Name:     ev.Name,
				OffsetUS: (ev.At - base) / 1e3,
				Attrs:    attrMap(ev.Attrs),
			})
		}
		spans = append(spans, ws)
	}
	json.NewEncoder(w).Encode(map[string]any{
		"id":            t.ID.String(),
		"reason":        t.Reason,
		"dropped_spans": t.Dropped,
		"spans":         spans,
	})
}
