// Package trace is a dependency-free distributed-tracing core:
// W3C-traceparent-compatible trace/span ids carried on context.Context,
// cheap span start/end with typed attributes and events, head sampling
// by rate plus always-keep for errors and slow-tail requests, and a
// lock-free ring-buffer store served as a trace explorer on the ops
// listener. Everything is stdlib-only; a nil *Tracer (tracing disabled)
// makes every operation a no-op so hot paths stay allocation-free.
//
// The unit of storage is a locally-rooted trace: the first span started
// in this process (the HTTP server span on a coordinator, the RPC
// server span on a shard node) owns a span buffer that child spans
// append into; when the local root ends, the keep decision runs
// (head-sampled || any span errored || root duration ≥ slow threshold)
// and the whole buffer is committed to the store — or dropped — at
// once. Remote parents arriving via traceparent or the RARC trace
// field continue the same trace id, so /debug/traces on each node of a
// cluster shows its local slice of one distributed trace under one id.
package trace

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"rankedaccess/internal/reqid"
)

// TraceID is a 16-byte W3C trace id (non-zero when valid).
type TraceID [16]byte

// SpanID is an 8-byte W3C span id (non-zero when valid).
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the id as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID parses 32 hex digits; ok is false for malformed or
// all-zero input.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 32 {
		return t, false
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return t, !t.IsZero()
}

// FlagSampled is the traceparent sampled flag: the trace's head-sample
// decision, made once at the root and honored downstream.
const FlagSampled byte = 0x01

// SpanContext identifies one span of one trace plus the trace flags —
// everything that crosses a process boundary.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
}

// Valid reports whether both ids are non-zero.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Sampled reports the head-sample flag.
func (sc SpanContext) Sampled() bool { return sc.Flags&FlagSampled != 0 }

// Traceparent renders the context in W3C traceparent form:
// 00-<32 hex trace id>-<16 hex span id>-<2 hex flags>.
func (sc SpanContext) Traceparent() string {
	b := make([]byte, 0, 55)
	b = append(b, '0', '0', '-')
	b = hex.AppendEncode(b, sc.TraceID[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, sc.SpanID[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, []byte{sc.Flags})
	return string(b)
}

// ParseTraceparent parses a W3C traceparent header. Any version except
// ff is accepted (future versions may append fields after the flags);
// zero trace or span ids are rejected per the spec.
func ParseTraceparent(s string) (SpanContext, bool) {
	var sc SpanContext
	if len(s) < 55 {
		return sc, false
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return sc, false
	}
	var ver [1]byte
	if _, err := hex.Decode(ver[:], []byte(s[0:2])); err != nil || ver[0] == 0xff {
		return sc, false
	}
	if len(s) > 55 && (ver[0] == 0 || s[55] != '-') {
		return sc, false
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(s[3:35])); err != nil {
		return sc, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(s[36:52])); err != nil {
		return sc, false
	}
	var fl [1]byte
	if _, err := hex.Decode(fl[:], []byte(s[53:55])); err != nil {
		return sc, false
	}
	sc.Flags = fl[0]
	return sc, sc.Valid()
}

func newTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		binary.LittleEndian.PutUint64(t[:8], rand.Uint64())
		binary.LittleEndian.PutUint64(t[8:], rand.Uint64())
	}
	return t
}

func newSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		binary.LittleEndian.PutUint64(s[:], rand.Uint64())
	}
	return s
}

// Kind classifies a span for waterfall rendering and OTLP export.
type Kind uint8

const (
	// KindInternal is an in-process operation (engine build, WAL apply).
	KindInternal Kind = iota
	// KindServer covers handling one inbound request (HTTP or RARC).
	KindServer
	// KindClient covers one outbound call (RARC client, export POST).
	KindClient
)

// String names the kind for JSON rendering.
func (k Kind) String() string {
	switch k {
	case KindServer:
		return "server"
	case KindClient:
		return "client"
	default:
		return "internal"
	}
}

// AttrKind discriminates the typed Attr payload.
type AttrKind uint8

const (
	// AttrString marks a string-valued attribute.
	AttrString AttrKind = iota
	// AttrInt marks an int64-valued attribute.
	AttrInt
	// AttrBool marks a bool-valued attribute (Num 0/1).
	AttrBool
)

// Attr is one typed span attribute. Keys must be low-cardinality
// (endpoint names, peer addresses, shard indices — never raw tuple
// values); see CONTRIBUTING for the cardinality rules.
type Attr struct {
	Key  string
	Kind AttrKind
	Str  string
	Num  int64
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Kind: AttrString, Str: v} }

// Int builds an int64 attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Kind: AttrInt, Num: v} }

// Bool builds a bool attribute.
func Bool(k string, v bool) Attr {
	var n int64
	if v {
		n = 1
	}
	return Attr{Key: k, Kind: AttrBool, Num: n}
}

// Event is one timestamped point event inside a span (WAL fsync,
// coalesce hit, overlay catch-up).
type Event struct {
	Name  string
	At    int64 // unix nanos
	Attrs []Attr
}

// SpanData is the immutable record of one finished span.
type SpanData struct {
	Name   string
	ID     SpanID
	Parent SpanID // zero for the local root
	Kind   Kind
	Start  int64 // unix nanos
	Dur    int64 // nanos
	Err    string
	Attrs  []Attr
	Events []Event
}

// maxSpansPerTrace caps one local trace's span buffer so a runaway
// request cannot hold unbounded memory; overflow is counted, not kept.
const maxSpansPerTrace = 512

// state is the shared per-local-trace accumulator: child spans append
// their finished data here; the local root's End commits or drops the
// whole buffer atomically.
type state struct {
	tracer *Tracer
	tid    TraceID
	flags  byte

	mu      sync.Mutex
	spans   []SpanData
	done    bool
	errSeen bool
	dropped int
}

// Span is one in-flight span. The zero of *Span (nil) is valid and
// inert: every method no-ops, so call sites never branch on enablement.
// A Span is owned by one goroutine; End must be called exactly once.
type Span struct {
	st    *state
	root  bool
	start time.Time // monotonic anchor for Dur
	data  SpanData
}

// Tracer makes sampling decisions and owns the store and optional
// exporter. A nil Tracer is valid and disables tracing entirely.
type Tracer struct {
	headBar uint64 // keep when rand.Uint64() < headBar
	slow    time.Duration
	store   *Store
	export  *Exporter

	stStarted atomic.Uint64
	stKept    atomic.Uint64
}

// Options configures New.
type Options struct {
	// Rate is the head-sampling probability in [0, 1]: the fraction of
	// root spans whose traces are kept regardless of outcome (and whose
	// sampled flag propagates downstream).
	Rate float64
	// Slow keeps any trace whose local root ran at least this long,
	// independent of the head decision; 0 disables the slow-tail keep.
	Slow time.Duration
	// Buffer is the ring-buffer capacity in traces (default 256).
	Buffer int
	// Export, when non-nil, receives every kept trace for OTLP/JSON
	// delivery in the background.
	Export *Exporter
}

// New builds a Tracer. The caller decides enablement: construct a
// Tracer only when tracing is on and pass nil everywhere otherwise.
func New(o Options) *Tracer {
	n := o.Buffer
	if n <= 0 {
		n = 256
	}
	t := &Tracer{slow: o.Slow, store: NewStore(n), export: o.Export}
	switch {
	case o.Rate >= 1:
		t.headBar = ^uint64(0)
	case o.Rate > 0:
		t.headBar = uint64(o.Rate * float64(1<<63) * 2)
	}
	return t
}

// Store returns the tracer's ring-buffer store (nil for a nil tracer).
func (t *Tracer) Store() *Store {
	if t == nil {
		return nil
	}
	return t.store
}

// Close drains and stops the attached exporter, if any. The tracer
// itself stays usable (spans still record and store locally).
func (t *Tracer) Close() {
	if t == nil || t.export == nil {
		return
	}
	t.export.Close()
}

// Stats reports lifetime root-span starts and kept traces.
func (t *Tracer) Stats() (started, kept uint64) {
	if t == nil {
		return 0, 0
	}
	return t.stStarted.Load(), t.stKept.Load()
}

// sampleHead decides the head keep from the trace id's low 8 bytes
// rather than a fresh random draw: the id bytes are already uniform,
// it saves a generator call on every root start, and — like OTLP
// ratio samplers — it makes the decision a pure function of the id,
// so any process sampling the same trace at the same rate agrees.
func (t *Tracer) sampleHead(tid TraceID) bool {
	return t.headBar == ^uint64(0) ||
		(t.headBar > 0 && binary.LittleEndian.Uint64(tid[8:]) < t.headBar)
}

type spanKey struct{}
type remoteKey struct{}

// spanCtx carries the active span on the context without a separate
// context.WithValue allocation: it is embedded in the same heap block
// as the span it carries (see rootBlock/childBlock), so starting a
// span costs exactly one allocation.
type spanCtx struct {
	parent context.Context
	s      *Span
}

func (c *spanCtx) Deadline() (time.Time, bool) { return c.parent.Deadline() }
func (c *spanCtx) Done() <-chan struct{}       { return c.parent.Done() }
func (c *spanCtx) Err() error                  { return c.parent.Err() }
func (c *spanCtx) Value(k any) any {
	if _, ok := k.(spanKey); ok {
		return c.s
	}
	return c.parent.Value(k)
}

// rootBlock is the single allocation behind a local-root Start: trace
// state, the root span, and its context wrapper, laid out together.
type rootBlock struct {
	st  state
	sp  Span
	ctx spanCtx
}

// childBlock is the single allocation behind a child Start.
type childBlock struct {
	sp  Span
	ctx spanCtx
}

// ContextWithRemote records a remote parent span context (parsed from
// traceparent or the RARC trace field) so the next Start continues
// that trace instead of minting a new id.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteKey{}, sc)
}

// FromContext returns the active local span, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// SpanContextOf returns the propagation context of the active local
// span if any, else the remote parent if any. ok is false when the
// context carries no trace.
func SpanContextOf(ctx context.Context) (SpanContext, bool) {
	if s := FromContext(ctx); s != nil {
		return s.Context(), true
	}
	sc, ok := ctx.Value(remoteKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// Start begins a span. With a local parent on ctx the span joins its
// trace; with only a remote parent it roots a new local buffer under
// the remote trace id (inheriting the sampled flag); with neither it
// mints a trace id and makes the head-sampling decision. A nil tracer
// returns (ctx, nil) untouched — and nil *Span methods all no-op.
func (t *Tracer) Start(ctx context.Context, name string, kind Kind) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	now := time.Now()
	if parent := FromContext(ctx); parent != nil && parent.st != nil && parent.st.tracer == t {
		cb := &childBlock{}
		s := &cb.sp
		s.st = parent.st
		s.start = now
		s.data = SpanData{Name: name, ID: newSpanID(), Parent: parent.data.ID, Kind: kind, Start: now.UnixNano()}
		cb.ctx = spanCtx{parent: ctx, s: s}
		return &cb.ctx, s
	}
	var tid TraceID
	var parentID SpanID
	var flags byte
	if rsc, ok := ctx.Value(remoteKey{}).(SpanContext); ok && rsc.Valid() {
		tid, parentID, flags = rsc.TraceID, rsc.SpanID, rsc.Flags
	} else {
		tid = newTraceID()
		if t.sampleHead(tid) {
			flags = FlagSampled
		}
	}
	rb := &rootBlock{}
	st := &rb.st
	st.tracer = t
	st.tid = tid
	st.flags = flags
	s := &rb.sp
	s.st = st
	s.root = true
	s.start = now
	s.data = SpanData{Name: name, ID: newSpanID(), Parent: parentID, Kind: kind, Start: now.UnixNano()}
	if id := reqid.From(ctx); id != "" {
		s.data.Attrs = append(s.data.Attrs, Str("request_id", id))
	}
	t.stStarted.Add(1)
	rb.ctx = spanCtx{parent: ctx, s: s}
	return &rb.ctx, s
}

// Context returns the span's propagation context (zero for nil spans).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.st.tid, SpanID: s.data.ID, Flags: s.st.flags}
}

// TraceIDString returns the 32-hex trace id, or "" for a nil span —
// the exemplar and request-log join key.
func (s *Span) TraceIDString() string {
	if s == nil {
		return ""
	}
	return s.st.tid.String()
}

// SetAttr appends typed attributes. Not safe for concurrent use with
// other methods of the same span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.data.Attrs = append(s.data.Attrs, attrs...)
}

// AddEvent appends a point event stamped now.
func (s *Span) AddEvent(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.data.Events = append(s.data.Events, Event{Name: name, At: time.Now().UnixNano(), Attrs: attrs})
}

// SetError marks the span failed; any failed span forces the trace to
// be kept when the local root ends. A nil error is ignored.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.data.Err = err.Error()
}

// SetErrorString is SetError for call sites that only have a message.
func (s *Span) SetErrorString(msg string) {
	if s == nil || msg == "" {
		return
	}
	s.data.Err = msg
}

// End finishes the span. Ending the local root runs the keep decision
// (head-sampled, any error, or root duration ≥ the slow threshold) and
// commits the whole local buffer to the store and exporter. Spans
// ending after their root has committed are dropped silently (the
// buffer is sealed); End is idempotent per span only in that sealed
// case — call it exactly once.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.data.Dur = int64(time.Since(s.start))
	st := s.st
	st.mu.Lock()
	if st.done {
		st.mu.Unlock()
		return
	}
	if !s.root {
		if s.data.Err != "" {
			st.errSeen = true
		}
		// Children stop one short of the cap so the root's own data
		// (appended at commit) always fits.
		if len(st.spans) < maxSpansPerTrace-1 {
			st.spans = append(st.spans, s.data)
		} else {
			st.dropped++
		}
		st.mu.Unlock()
		return
	}
	st.done = true
	spans := st.spans
	errSeen := st.errSeen || s.data.Err != ""
	dropped := st.dropped
	st.spans = nil
	st.mu.Unlock()

	t := st.tracer
	reason := ""
	switch {
	case st.flags&FlagSampled != 0:
		reason = "head"
	case errSeen:
		reason = "error"
	case t.slow > 0 && time.Duration(s.data.Dur) >= t.slow:
		reason = "slow"
	default:
		// Discarded: the root's own data was never buffered, so the
		// common unsampled request pays no span-copy at all.
		return
	}
	spans = append(spans, s.data)
	sortSpans(spans)
	tr := &Trace{ID: st.tid, Reason: reason, Spans: spans, Dropped: dropped}
	t.stKept.Add(1)
	t.store.Add(tr)
	if t.export != nil {
		t.export.Enqueue(tr)
	}
}

// sortSpans orders by start time (root first in practice: it started
// earliest), stable so equal timestamps keep append order.
func sortSpans(spans []SpanData) {
	// Insertion sort: buffers are small and nearly ordered by end time.
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spans[j].Start < spans[j-1].Start; j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
}
