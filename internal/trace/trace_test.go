package trace

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	_, root := New(Options{Rate: 1}).Start(context.Background(), "root", KindServer)
	sc := root.Context()
	if !sc.Valid() || !sc.Sampled() {
		t.Fatalf("root context not valid+sampled: %+v", sc)
	}
	hdr := sc.Traceparent()
	if len(hdr) != 55 || !strings.HasPrefix(hdr, "00-") {
		t.Fatalf("traceparent shape: %q", hdr)
	}
	got, ok := ParseTraceparent(hdr)
	if !ok || got != sc {
		t.Fatalf("round trip: %q -> %+v ok=%v, want %+v", hdr, got, ok, sc)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-abc",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // version ff
		"0g-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // bad hex version
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0x",
		"00-4bf92f3577b34da6a3ce929d0e0e4736+00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", // v0 must end at flags
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted", s)
		}
	}
	// Future versions may append -fields.
	if _, ok := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-what-ever"); !ok {
		t.Errorf("future-version traceparent with extra fields rejected")
	}
}

func TestHeadSamplingKeeps(t *testing.T) {
	tr := New(Options{Rate: 1, Buffer: 8})
	ctx, root := tr.Start(context.Background(), "root", KindServer)
	_, child := tr.Start(ctx, "child", KindInternal)
	child.SetAttr(Int("k", 7))
	child.End()
	root.End()
	traces := tr.Store().Snapshot()
	if len(traces) != 1 {
		t.Fatalf("stored %d traces, want 1", len(traces))
	}
	got := traces[0]
	if got.Reason != "head" {
		t.Fatalf("reason %q, want head", got.Reason)
	}
	if len(got.Spans) != 2 || got.Spans[0].Name != "root" || got.Spans[1].Name != "child" {
		t.Fatalf("spans: %+v", got.Spans)
	}
	if got.Spans[1].Parent != got.Spans[0].ID {
		t.Fatalf("child parent %v, want root id %v", got.Spans[1].Parent, got.Spans[0].ID)
	}
}

func TestRateZeroDropsCleanFastTraces(t *testing.T) {
	tr := New(Options{Rate: 0, Slow: time.Hour, Buffer: 8})
	for i := 0; i < 50; i++ {
		_, root := tr.Start(context.Background(), "root", KindServer)
		root.End()
	}
	if n := tr.Store().Len(); n != 0 {
		t.Fatalf("stored %d unsampled clean traces, want 0", n)
	}
}

func TestErrorAlwaysKept(t *testing.T) {
	tr := New(Options{Rate: 0, Buffer: 8})
	ctx, root := tr.Start(context.Background(), "root", KindServer)
	_, child := tr.Start(ctx, "child", KindClient)
	child.SetError(errors.New("peer unreachable"))
	child.End()
	root.End()
	traces := tr.Store().Snapshot()
	if len(traces) != 1 || traces[0].Reason != "error" {
		t.Fatalf("error trace not kept: %+v", traces)
	}
}

func TestSlowTailKept(t *testing.T) {
	tr := New(Options{Rate: 0, Slow: time.Nanosecond, Buffer: 8})
	_, root := tr.Start(context.Background(), "root", KindServer)
	time.Sleep(time.Millisecond)
	root.End()
	traces := tr.Store().Snapshot()
	if len(traces) != 1 || traces[0].Reason != "slow" {
		t.Fatalf("slow trace not kept: %+v", traces)
	}
}

func TestRemoteParentContinuesTrace(t *testing.T) {
	up := New(Options{Rate: 1, Buffer: 8})
	_, root := up.Start(context.Background(), "upstream", KindServer)
	hdr := root.Context().Traceparent()
	root.End()

	sc, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatal("parse failed")
	}
	down := New(Options{Rate: 0, Buffer: 8}) // would drop without the flag
	ctx := ContextWithRemote(context.Background(), sc)
	_, srv := down.Start(ctx, "rpc.server", KindServer)
	if srv.Context().TraceID != sc.TraceID {
		t.Fatalf("trace id not continued: %v vs %v", srv.Context().TraceID, sc.TraceID)
	}
	srv.End()
	traces := down.Store().Snapshot()
	if len(traces) != 1 || traces[0].ID != sc.TraceID {
		t.Fatalf("downstream did not keep remote-sampled trace: %+v", traces)
	}
	if traces[0].Spans[0].Parent != sc.SpanID {
		t.Fatalf("downstream root parent %v, want upstream span %v", traces[0].Spans[0].Parent, sc.SpanID)
	}
}

func TestSpanContextOf(t *testing.T) {
	if _, ok := SpanContextOf(context.Background()); ok {
		t.Fatal("empty context reported a trace")
	}
	tr := New(Options{Rate: 1})
	ctx, root := tr.Start(context.Background(), "root", KindServer)
	if sc, ok := SpanContextOf(ctx); !ok || sc.SpanID != root.Context().SpanID {
		t.Fatalf("active span context: %+v ok=%v", sc, ok)
	}
	root.End()
}

func TestStoreRingOverwrites(t *testing.T) {
	s := NewStore(4)
	for i := 0; i < 10; i++ {
		s.Add(&Trace{ID: TraceID{byte(i + 1)}, Reason: "head"})
	}
	snap := s.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring holds %d, want 4", len(snap))
	}
	if snap[0].ID != (TraceID{10}) {
		t.Fatalf("newest first: got %v", snap[0].ID)
	}
	if s.Get(TraceID{1}) != nil {
		t.Fatal("evicted trace still found")
	}
	if s.Get(TraceID{9}) == nil {
		t.Fatal("recent trace not found")
	}
}

func TestNilTracerAndSpanAreInert(t *testing.T) {
	var tr *Tracer
	ctx, s := tr.Start(context.Background(), "x", KindServer)
	if s != nil || ctx != context.Background() {
		t.Fatal("nil tracer must return ctx unchanged and a nil span")
	}
	allocs := testing.AllocsPerRun(100, func() {
		c2, sp := tr.Start(ctx, "x", KindInternal)
		sp.SetAttr(Int("k", 1))
		sp.AddEvent("e")
		sp.SetError(nil)
		sp.End()
		_ = c2
		if _, ok := SpanContextOf(c2); ok {
			t.Fatal("trace appeared from nowhere")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %v per op, want 0", allocs)
	}
	if tr.Store() != nil {
		t.Fatal("nil tracer store must be nil")
	}
}

func TestExplorerListAndWaterfall(t *testing.T) {
	tr := New(Options{Rate: 1, Buffer: 8})
	ctx, root := tr.Start(context.Background(), "GET /v1/instance/access", KindServer)
	_, child := tr.Start(ctx, "rpc.Rank", KindClient)
	child.SetAttr(Str("peer", "127.0.0.1:9101"), Int("round", 3))
	child.AddEvent("retry", Str("why", "conn reset"))
	child.End()
	root.End()
	id := root.TraceIDString()

	h := tr.Store().Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?sort=dur", nil))
	var list struct {
		Traces []struct {
			ID     string `json:"id"`
			Root   string `json:"root"`
			Spans  int    `json:"spans"`
			Reason string `json:"reason"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("list decode: %v\n%s", err, rec.Body.String())
	}
	if len(list.Traces) != 1 || list.Traces[0].ID != id || list.Traces[0].Spans != 2 {
		t.Fatalf("list: %+v want id %s", list.Traces, id)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?id="+id, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("waterfall status %d: %s", rec.Code, rec.Body.String())
	}
	var wf struct {
		ID    string `json:"id"`
		Spans []struct {
			Name   string         `json:"name"`
			Parent string         `json:"parent"`
			Attrs  map[string]any `json:"attrs"`
			Events []struct {
				Name string `json:"name"`
			} `json:"events"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &wf); err != nil {
		t.Fatalf("waterfall decode: %v", err)
	}
	if wf.ID != id || len(wf.Spans) != 2 {
		t.Fatalf("waterfall: %+v", wf)
	}
	if wf.Spans[1].Attrs["peer"] != "127.0.0.1:9101" || wf.Spans[1].Attrs["round"] != float64(3) {
		t.Fatalf("child attrs: %+v", wf.Spans[1].Attrs)
	}
	if len(wf.Spans[1].Events) != 1 || wf.Spans[1].Events[0].Name != "retry" {
		t.Fatalf("child events: %+v", wf.Spans[1].Events)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?id=ffffffffffffffffffffffffffffffff", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("missing trace status %d", rec.Code)
	}
}

func TestExporterOTLPShape(t *testing.T) {
	got := make(chan map[string]any, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var m map[string]any
		if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
			t.Errorf("payload decode: %v", err)
		}
		select {
		case got <- m:
		default:
		}
	}))
	defer srv.Close()

	exp := NewExporter(srv.URL, "ra-test")
	tr := New(Options{Rate: 1, Buffer: 8, Export: exp})
	ctx, root := tr.Start(context.Background(), "root", KindServer)
	_, child := tr.Start(ctx, "child", KindClient)
	child.SetError(errors.New("boom"))
	child.End()
	root.End()
	exp.Close()

	var m map[string]any
	select {
	case m = <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("exporter never posted")
	}
	rs := m["resourceSpans"].([]any)[0].(map[string]any)
	attrs := rs["resource"].(map[string]any)["attributes"].([]any)[0].(map[string]any)
	if attrs["key"] != "service.name" {
		t.Fatalf("resource attrs: %+v", attrs)
	}
	spans := rs["scopeSpans"].([]any)[0].(map[string]any)["spans"].([]any)
	if len(spans) != 2 {
		t.Fatalf("exported %d spans, want 2", len(spans))
	}
	sp0 := spans[0].(map[string]any)
	if sp0["traceId"] != root.TraceIDString() || sp0["kind"] != float64(2) {
		t.Fatalf("root span: %+v", sp0)
	}
	sp1 := spans[1].(map[string]any)
	if sp1["parentSpanId"] == "" || sp1["status"].(map[string]any)["code"] != float64(2) {
		t.Fatalf("child span: %+v", sp1)
	}
	if sent, _ := exp.Stats(); sent != 1 {
		t.Fatalf("sent %d traces, want 1", sent)
	}
}

func TestSpanBufferCap(t *testing.T) {
	tr := New(Options{Rate: 1, Buffer: 2})
	ctx, root := tr.Start(context.Background(), "root", KindServer)
	for i := 0; i < maxSpansPerTrace+10; i++ {
		_, s := tr.Start(ctx, "c", KindInternal)
		s.End()
	}
	root.End()
	traces := tr.Store().Snapshot()
	if len(traces) != 1 {
		t.Fatalf("stored %d", len(traces))
	}
	if len(traces[0].Spans) != maxSpansPerTrace {
		t.Fatalf("kept %d spans, want cap %d", len(traces[0].Spans), maxSpansPerTrace)
	}
	if traces[0].Dropped != 11 { // 10 extra children + the root itself
		t.Fatalf("dropped %d, want 11", traces[0].Dropped)
	}
}
