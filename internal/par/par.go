// Package par provides the bounded-worker fan-out used by the
// preprocessing pipelines: per-atom materialization in reduce, per-layer
// bucketing in access, and per-intersection construction in ucq all run
// their independent units through Do/DoErr.
//
// The worker bound is process-global so that benchmarks and servers can
// pin preprocessing to a single core (SetLimit(1) restores fully serial
// behavior, byte-for-byte identical results) or widen it. Nested Do calls
// are safe: each call spawns its own workers, so a parallel build whose
// units themselves call Do simply oversubscribes a little rather than
// deadlocking.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// limit is the configured worker bound; 0 means GOMAXPROCS.
var limit atomic.Int64

// SetLimit bounds the number of workers used by subsequent Do/DoErr
// calls. n <= 0 resets to the default (GOMAXPROCS at call time).
func SetLimit(n int) {
	if n < 0 {
		n = 0
	}
	limit.Store(int64(n))
}

// Limit reports the effective worker bound.
func Limit() int {
	if n := int(limit.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Do runs f(i) for every i in [0, n), fanning out across at most Limit()
// goroutines. It returns when all calls have completed. With a limit of
// one (or n == 1) it degenerates to a plain loop on the calling
// goroutine, so serial semantics are always recoverable.
func Do(n int, f func(int)) {
	workers := Limit()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// DoErr is Do for units that can fail. Every unit runs regardless of
// other units' failures (results stay deterministic); the first error in
// index order is returned.
func DoErr(n int, f func(int) error) error {
	errs := make([]error, n)
	Do(n, func(i int) { errs[i] = f(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// DoCtx is Do with cancellation: units not yet claimed when ctx is done
// are skipped, and ctx.Err() is returned. Units already running are
// never interrupted (they hold scratch buffers mid-mutation), so
// cancellation latency is one unit, not zero — the wave boundary, not
// the wave interior. A nil ctx degenerates to Do.
func DoCtx(ctx context.Context, n int, f func(int)) error {
	if ctx == nil || ctx.Done() == nil {
		Do(n, f)
		return nil
	}
	var canceled atomic.Bool
	Do(n, func(i int) {
		if canceled.Load() {
			return
		}
		if ctx.Err() != nil {
			canceled.Store(true)
			return
		}
		f(i)
	})
	return ctx.Err()
}

// DoErrCtx is DoErr with cancellation, DoCtx's error-collecting
// counterpart. On cancellation ctx.Err() wins over unit errors: a
// partially-run wave's first-error is not deterministic, and callers
// must treat the whole result as abandoned anyway.
func DoErrCtx(ctx context.Context, n int, f func(int) error) error {
	if ctx == nil || ctx.Done() == nil {
		return DoErr(n, f)
	}
	errs := make([]error, n)
	if err := DoCtx(ctx, n, func(i int) { errs[i] = f(i) }); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
