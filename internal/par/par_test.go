package par

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestDoCoversAllIndices(t *testing.T) {
	for _, lim := range []int{0, 1, 3} {
		SetLimit(lim)
		const n = 1000
		var seen [n]atomic.Int64
		Do(n, func(i int) { seen[i].Add(1) })
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("limit %d: index %d ran %d times", lim, i, got)
			}
		}
	}
	SetLimit(0)
}

func TestDoErrFirstErrorInIndexOrder(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := DoErr(10, func(i int) error {
		switch i {
		case 3:
			return errA
		case 7:
			return errB
		}
		return nil
	})
	if err != errA {
		t.Fatalf("got %v, want first-index error %v", err, errA)
	}
	if err := DoErr(5, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestDoZeroAndOne(t *testing.T) {
	Do(0, func(int) { t.Fatal("must not run") })
	ran := false
	Do(1, func(i int) { ran = i == 0 })
	if !ran {
		t.Fatal("single unit did not run")
	}
}
