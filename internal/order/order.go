// Package order defines the two answer-order families of the paper:
// lexicographic orders (LEX, Definition in §2.2(1)) with per-variable
// direction, and sum-of-weights orders (SUM, §2.2(2)).
//
// Throughout the repository an answer is a []values.Value indexed by
// cq.VarID (slots of existential variables are unused).
package order

import (
	"fmt"
	"strings"

	"rankedaccess/internal/cq"
	"rankedaccess/internal/values"
)

// Answer assigns values to variables, indexed by cq.VarID. Only free
// variable slots are meaningful.
type Answer = []values.Value

// Direction of one lexicographic component.
type Direction int

const (
	// Asc sorts the component by increasing domain value.
	Asc Direction = iota
	// Desc sorts the component by decreasing domain value.
	Desc
)

// LexEntry is one component of a lexicographic order.
type LexEntry struct {
	Var cq.VarID
	Dir Direction
}

// Lex is a (possibly partial) lexicographic order over free variables.
type Lex struct {
	Entries []LexEntry
}

// NewLex builds an ascending lexicographic order over the given variables.
func NewLex(vars ...cq.VarID) Lex {
	l := Lex{Entries: make([]LexEntry, len(vars))}
	for i, v := range vars {
		l.Entries[i] = LexEntry{Var: v}
	}
	return l
}

// Vars returns the ordered variable ids.
func (l Lex) Vars() []cq.VarID {
	out := make([]cq.VarID, len(l.Entries))
	for i, e := range l.Entries {
		out[i] = e.Var
	}
	return out
}

// VarSet returns the set of order variables as a bitset.
func (l Lex) VarSet() uint64 {
	var s uint64
	for _, e := range l.Entries {
		s |= 1 << uint(e.Var)
	}
	return s
}

// IsPartialFor reports whether l covers a strict subset of q's free
// variables.
func (l Lex) IsPartialFor(q *cq.Query) bool {
	return l.VarSet() != q.Free()
}

// Validate checks that l mentions only free variables of q, each at most
// once.
func (l Lex) Validate(q *cq.Query) error {
	free := q.Free()
	var seen uint64
	for _, e := range l.Entries {
		bit := uint64(1) << uint(e.Var)
		if free&bit == 0 {
			return fmt.Errorf("order: %s is not a free variable of %s", q.VarName(e.Var), q.Name)
		}
		if seen&bit != 0 {
			return fmt.Errorf("order: variable %s repeats in the order", q.VarName(e.Var))
		}
		seen |= bit
	}
	return nil
}

// Compare compares two answers under l: negative if a before b, 0 if
// equal on all order components.
func (l Lex) Compare(a, b Answer) int {
	for _, e := range l.Entries {
		av, bv := a[e.Var], b[e.Var]
		if av == bv {
			continue
		}
		less := av < bv
		if e.Dir == Desc {
			less = !less
		}
		if less {
			return -1
		}
		return 1
	}
	return 0
}

// CompareValues compares two values of the entry's component.
func (e LexEntry) CompareValues(a, b values.Value) int {
	if a == b {
		return 0
	}
	less := a < b
	if e.Dir == Desc {
		less = !less
	}
	if less {
		return -1
	}
	return 1
}

// String renders the order, e.g. "⟨x, z desc⟩" as "x, z desc".
func (l Lex) Render(q *cq.Query) string {
	parts := make([]string, len(l.Entries))
	for i, e := range l.Entries {
		parts[i] = q.VarName(e.Var)
		if e.Dir == Desc {
			parts[i] += " desc"
		}
	}
	return strings.Join(parts, ", ")
}

// ParseLex parses a comma-separated variable list with optional "asc" /
// "desc" suffixes, e.g. "x, z desc, y". Variables must already exist in q.
func ParseLex(q *cq.Query, s string) (Lex, error) {
	var l Lex
	s = strings.TrimSpace(s)
	if s == "" {
		return l, nil
	}
	for _, part := range strings.Split(s, ",") {
		fields := strings.Fields(part)
		if len(fields) == 0 || len(fields) > 2 {
			return Lex{}, fmt.Errorf("order: bad component %q", part)
		}
		v, ok := q.VarByName(fields[0])
		if !ok {
			return Lex{}, fmt.Errorf("order: unknown variable %q", fields[0])
		}
		dir := Asc
		if len(fields) == 2 {
			switch strings.ToLower(fields[1]) {
			case "asc":
			case "desc":
				dir = Desc
			default:
				return Lex{}, fmt.Errorf("order: bad direction %q", fields[1])
			}
		}
		l.Entries = append(l.Entries, LexEntry{Var: v, Dir: dir})
	}
	if err := l.Validate(q); err != nil {
		return Lex{}, err
	}
	return l, nil
}
