package order

import (
	"testing"

	"rankedaccess/internal/cq"
	"rankedaccess/internal/values"
)

func twoPath(t *testing.T) *cq.Query {
	t.Helper()
	return cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
}

func ans(q *cq.Query, m map[string]values.Value) Answer {
	a := make(Answer, q.NumVars())
	for name, v := range m {
		id, ok := q.VarByName(name)
		if !ok {
			panic("unknown var " + name)
		}
		a[id] = v
	}
	return a
}

func TestParseLexBasic(t *testing.T) {
	q := twoPath(t)
	l, err := ParseLex(q, "x, z desc, y asc")
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Entries) != 3 || l.Entries[1].Dir != Desc || l.Entries[2].Dir != Asc {
		t.Fatalf("parsed %+v", l)
	}
	if l.Render(q) != "x, z desc, y" {
		t.Fatalf("render = %q", l.Render(q))
	}
	if l.IsPartialFor(q) {
		t.Fatal("full order misclassified as partial")
	}
	l2, err := ParseLex(q, "x, z")
	if err != nil {
		t.Fatal(err)
	}
	if !l2.IsPartialFor(q) {
		t.Fatal("partial order misclassified as full")
	}
}

func TestParseLexErrors(t *testing.T) {
	q := twoPath(t)
	for _, bad := range []string{"w", "x, x", "x down", "x y z"} {
		if _, err := ParseLex(q, bad); err == nil {
			t.Errorf("ParseLex(%q) must fail", bad)
		}
	}
}

func TestLexValidateRejectsExistential(t *testing.T) {
	q := cq.MustParse("Q(x, z) :- R(x, y), S(y, z)")
	y, _ := q.VarByName("y")
	l := NewLex(y)
	if err := l.Validate(q); err == nil {
		t.Fatal("existential variable in order must be rejected")
	}
}

func TestLexCompare(t *testing.T) {
	q := twoPath(t)
	l, _ := ParseLex(q, "x, y")
	a := ans(q, map[string]values.Value{"x": 1, "y": 2, "z": 5})
	b := ans(q, map[string]values.Value{"x": 1, "y": 5, "z": 3})
	if l.Compare(a, b) >= 0 {
		t.Fatal("(1,2) must precede (1,5)")
	}
	if l.Compare(b, a) <= 0 {
		t.Fatal("comparison must be antisymmetric")
	}
	// Equal on order components → 0 even if z differs.
	c := ans(q, map[string]values.Value{"x": 1, "y": 2, "z": 9})
	if l.Compare(a, c) != 0 {
		t.Fatal("z is not an order component here")
	}
}

func TestLexCompareDesc(t *testing.T) {
	q := twoPath(t)
	l, _ := ParseLex(q, "y desc")
	a := ans(q, map[string]values.Value{"y": 2})
	b := ans(q, map[string]values.Value{"y": 5})
	if l.Compare(a, b) <= 0 {
		t.Fatal("descending order must put larger y first")
	}
	e := l.Entries[0]
	if e.CompareValues(5, 2) >= 0 {
		t.Fatal("CompareValues must respect direction")
	}
	if e.CompareValues(3, 3) != 0 {
		t.Fatal("equal values compare 0")
	}
}

func TestSumWeights(t *testing.T) {
	q := twoPath(t)
	x, _ := q.VarByName("x")
	y, _ := q.VarByName("y")
	z, _ := q.VarByName("z")
	s := IdentitySum(x, y, z)
	// Figure 2(d): answer (1,2,5) has weight 8; (6,2,5) has weight 13.
	a := ans(q, map[string]values.Value{"x": 1, "y": 2, "z": 5})
	b := ans(q, map[string]values.Value{"x": 6, "y": 2, "z": 5})
	if got := s.AnswerWeight(q, a); got != 8 {
		t.Fatalf("weight = %v, want 8", got)
	}
	if got := s.AnswerWeight(q, b); got != 13 {
		t.Fatalf("weight = %v, want 13", got)
	}
	if s.Compare(q, a, b) >= 0 {
		t.Fatal("8 must precede 13")
	}
}

func TestTableSumAndDefaults(t *testing.T) {
	q := twoPath(t)
	x, _ := q.VarByName("x")
	s := TableSum(map[cq.VarID]map[values.Value]float64{
		x: {1: 10.5},
	})
	if s.VarWeight(x, 1) != 10.5 {
		t.Fatal("table weight lookup")
	}
	if s.VarWeight(x, 2) != 0 {
		t.Fatal("missing table entry must weigh 0")
	}
	y, _ := q.VarByName("y")
	if s.VarWeight(y, 7) != 0 {
		t.Fatal("missing variable must weigh 0")
	}
}
