package order

import (
	"rankedaccess/internal/cq"
	"rankedaccess/internal/values"
)

// WeightFn maps a domain value of one variable to its real-valued weight.
type WeightFn func(v values.Value) float64

// Sum is a sum-of-weights order: each free variable has a weight
// function, and answers are ordered by the sum of the weights of their
// free-variable values (§2.2(2)). Variables without an entry weigh 0.
type Sum struct {
	W map[cq.VarID]WeightFn
}

// NewSum returns an empty SUM order (all weights 0).
func NewSum() Sum { return Sum{W: make(map[cq.VarID]WeightFn)} }

// IdentitySum weighs every listed variable by its own value code. This is
// the convention of Figure 2(d) ("weights identical to attribute values").
func IdentitySum(vars ...cq.VarID) Sum {
	s := NewSum()
	for _, v := range vars {
		s.W[v] = func(x values.Value) float64 { return float64(x) }
	}
	return s
}

// TableSum builds a SUM order from explicit per-variable weight tables.
// Values missing from a table weigh 0.
func TableSum(tables map[cq.VarID]map[values.Value]float64) Sum {
	s := NewSum()
	for v, tab := range tables {
		t := tab
		s.W[v] = func(x values.Value) float64 { return t[x] }
	}
	return s
}

// TupleSum is the tuple-weight convention of §2.2: each relation symbol
// maps to a function from a tuple's values to its weight (well-defined
// under set semantics). Relations without an entry weigh 0. Used with
// full self-join-free CQs, where the paper notes the semantics are clear.
type TupleSum map[string]func(t []values.Value) float64

// AnswerWeight sums the tuple weights an answer of the full query q picks
// from each atom's relation.
func (ts TupleSum) AnswerWeight(q *cq.Query, a Answer) float64 {
	total := 0.0
	buf := make([]values.Value, 0, 8)
	for _, atom := range q.Atoms {
		fn := ts[atom.Rel]
		if fn == nil {
			continue
		}
		buf = buf[:0]
		for _, v := range atom.Vars {
			buf = append(buf, a[v])
		}
		total += fn(buf)
	}
	return total
}

// VarWeight returns the weight of value x for variable v.
func (s Sum) VarWeight(v cq.VarID, x values.Value) float64 {
	if fn, ok := s.W[v]; ok {
		return fn(x)
	}
	return 0
}

// AnswerWeight returns the total weight of an answer of q: the sum over
// free variables of the variable's weight at the answer's value.
func (s Sum) AnswerWeight(q *cq.Query, a Answer) float64 {
	total := 0.0
	for _, v := range q.Head {
		total += s.VarWeight(v, a[v])
	}
	return total
}

// Compare orders answers by weight; ties compare as 0 (callers that need
// a total order break ties lexicographically over the head).
func (s Sum) Compare(q *cq.Query, a, b Answer) int {
	wa, wb := s.AnswerWeight(q, a), s.AnswerWeight(q, b)
	switch {
	case wa < wb:
		return -1
	case wa > wb:
		return 1
	default:
		return 0
	}
}
