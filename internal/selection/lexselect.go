package selection

import (
	"fmt"

	"rankedaccess/internal/checked"
	"rankedaccess/internal/classify"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/fd"
	"rankedaccess/internal/order"
	"rankedaccess/internal/reduce"
	"rankedaccess/internal/values"
)

// SelectLex returns the k-th answer (0-based) of q over in under the
// (possibly partial) lexicographic order l, in O(n) time (Theorem 6.1,
// algorithm of Lemma 6.6). Ties beyond l's variables are broken by
// ascending variable-id order, making the result deterministic.
//
// It fails with *classify-based IntractableError analog when q is not
// free-connex; callers should consult classify.SelectionLex first for
// the certificate.
func SelectLex(q *cq.Query, in *database.Instance, l order.Lex, k int64) (order.Answer, error) {
	if v := classify.SelectionLex(q, l); !v.Tractable {
		return nil, &IntractableError{Verdict: v}
	}
	full, err := reduce.FreeReduce(q, in)
	if err != nil {
		return nil, err
	}
	return selectLexFull(q, full, l, k)
}

// IntractableError mirrors access.IntractableError for the selection
// problems.
type IntractableError struct {
	Verdict classify.Verdict
}

func (e *IntractableError) Error() string {
	return "selection: " + e.Verdict.String()
}

// SelectLexFD is the Theorem 8.22 variant: selection under unary FDs is
// performed on the FD-extension (which must be free-connex) and mapped
// back.
func SelectLexFD(q *cq.Query, in *database.Instance, l order.Lex, fds fd.Set, k int64) (order.Answer, error) {
	verdict, w := classify.SelectionLexFD(q, l, fds)
	if !verdict.Tractable {
		return nil, &IntractableError{Verdict: verdict}
	}
	if err := fds.Check(q, in); err != nil {
		return nil, err
	}
	iplus, err := w.Ext.ExtendInstance(q, in)
	if err != nil {
		return nil, err
	}
	full, err := reduce.FreeReduce(w.Ext.Query, iplus)
	if err != nil {
		return nil, err
	}
	a, err := selectLexFull(w.Ext.Query, full, w.LPlus, k)
	if err != nil {
		return nil, err
	}
	return fd.ProjectAnswer(q, a), nil
}

// selectLexFull runs the iterative selection over a reduced full CQ.
func selectLexFull(q *cq.Query, full *reduce.Full, l order.Lex, k int64) (order.Answer, error) {
	if k < 0 {
		return nil, ErrOutOfBound
	}
	// Work on copies: the iteration filters relations destructively.
	nodes := make([]*reduce.Node, len(full.Nodes))
	for i, n := range full.Nodes {
		nodes[i] = &reduce.Node{Vars: append([]cq.VarID(nil), n.Vars...), Rel: n.Rel}
	}

	if q.IsBoolean() {
		if err := reduceNodes(nodes, full.Origin); err != nil {
			return nil, err
		}
		for _, n := range nodes {
			if n.Rel.Len() == 0 {
				return nil, ErrOutOfBound
			}
		}
		if k != 0 {
			return nil, ErrOutOfBound
		}
		return make(order.Answer, q.NumVars()), nil
	}

	// Complete the order arbitrarily: remaining free variables ascending.
	// (Any completion is valid for selection; no trio condition needed.)
	completed := append([]order.LexEntry(nil), l.Entries...)
	inOrder := uint64(0)
	for _, e := range completed {
		inOrder |= 1 << uint(e.Var)
	}
	for v := 0; v < q.NumVars(); v++ {
		bit := uint64(1) << uint(v)
		if q.Free()&bit != 0 && inOrder&bit == 0 {
			completed = append(completed, order.LexEntry{Var: cq.VarID(v)})
		}
	}

	ans := make(order.Answer, q.NumVars())
	for step, entry := range completed {
		hist, err := histogram(nodes, full.Origin, entry.Var)
		if err != nil {
			return nil, err
		}
		if len(hist) == 0 {
			return nil, ErrOutOfBound
		}
		// Direction: for descending components select on negated keys.
		items := make([]WItem[values.Value], 0, len(hist))
		for val, cnt := range hist {
			key := val
			if entry.Dir == order.Desc {
				key = -val
			}
			items = append(items, WItem[values.Value]{Key: key, Weight: cnt})
		}
		key, before, ok := WeightedSelect(items, k)
		if !ok {
			if step == 0 {
				return nil, ErrOutOfBound
			}
			return nil, fmt.Errorf("selection: internal: index escaped its group at %s",
				q.VarName(entry.Var))
		}
		val := key
		if entry.Dir == order.Desc {
			val = -key
		}
		ans[entry.Var] = val
		k -= before
		// Fix the chosen value in every node containing the variable.
		for _, n := range nodes {
			if c := n.Col(entry.Var); c >= 0 {
				cc := c
				n.Rel = n.Rel.Filter(func(t []values.Value) bool { return t[cc] == val })
			}
		}
	}
	if k != 0 {
		return nil, fmt.Errorf("selection: internal: residual index %d", k)
	}
	return ans, nil
}

// reduceNodes runs a Yannakakis full reduction over the nodes' join tree.
func reduceNodes(nodes []*reduce.Node, origin *cq.Query) error {
	f := &reduce.Full{Origin: origin, Nodes: nodes}
	tree, err := reduce.BuildTree(f)
	if err != nil {
		return err
	}
	tree.Yannakakis()
	return nil
}

// histogram computes, for each value c in the active domain of v, the
// number of answers assigning c to v (Lemma 6.5): reduce the nodes, root
// the join tree at a node containing v, compute subtree counts bottom-up,
// and aggregate the root counts by the value of v.
func histogram(nodes []*reduce.Node, origin *cq.Query, v cq.VarID) (map[values.Value]int64, error) {
	f := &reduce.Full{Origin: origin, Nodes: nodes}
	tree, err := reduce.BuildTree(f)
	if err != nil {
		return nil, err
	}
	rootIdx := -1
	for i, n := range nodes {
		if n.Col(v) >= 0 {
			rootIdx = i
			break
		}
	}
	if rootIdx < 0 {
		return nil, fmt.Errorf("selection: internal: variable %s in no node", origin.VarName(v))
	}
	tree.Reroot(rootIdx)
	tree.Yannakakis()

	counts, err := subtreeCounts(tree)
	if err != nil {
		return nil, err
	}
	root := nodes[rootIdx]
	col := root.Col(v)
	hist := make(map[values.Value]int64, root.Rel.Len())
	for i := 0; i < root.Rel.Len(); i++ {
		val := root.Rel.Tuple(i)[col]
		s, err := checked.Add(hist[val], counts[rootIdx][i])
		if err != nil {
			return nil, fmt.Errorf("selection: %w", err)
		}
		hist[val] = s
	}
	return hist, nil
}

// subtreeCounts computes, for every tuple of every node, the number of
// answers it participates in within its subtree (post-order product of
// child group sums).
func subtreeCounts(tree *reduce.Tree) ([][]int64, error) {
	nodes := tree.Full.Nodes
	counts := make([][]int64, len(nodes))
	var post []int
	var walk func(int)
	walk = func(u int) {
		for _, c := range tree.Children[u] {
			walk(c)
		}
		post = append(post, u)
	}
	walk(tree.Root)

	for _, u := range post {
		n := nodes[u]
		cnt := make([]int64, n.Rel.Len())
		for i := range cnt {
			cnt[i] = 1
		}
		for _, c := range tree.Children[u] {
			child := nodes[c]
			uCols, cCols := reduce.SharedCols(n, child)
			// Group child counts by join key.
			sums := make(map[string]int64, child.Rel.Len())
			var key []byte
			for i := 0; i < child.Rel.Len(); i++ {
				key = database.EncodeKey(key, child.Rel.Tuple(i), cCols)
				s, err := checked.Add(sums[string(key)], counts[c][i])
				if err != nil {
					return nil, fmt.Errorf("selection: %w", err)
				}
				sums[string(key)] = s
			}
			for i := 0; i < n.Rel.Len(); i++ {
				key = database.EncodeKey(key, n.Rel.Tuple(i), uCols)
				m, err := checked.Mul(cnt[i], sums[string(key)])
				if err != nil {
					return nil, fmt.Errorf("selection: %w", err)
				}
				cnt[i] = m
			}
		}
		counts[u] = cnt
	}
	return counts, nil
}

// CountAnswers returns |Q(I)| for a free-connex CQ in linear time (the
// root sums of the counting DP); used by tests and the CLI.
func CountAnswers(q *cq.Query, in *database.Instance) (int64, error) {
	full, err := reduce.FreeReduce(q, in)
	if err != nil {
		return 0, err
	}
	if q.IsBoolean() {
		if err := reduceNodes(full.Nodes, full.Origin); err != nil {
			return 0, err
		}
		for _, n := range full.Nodes {
			if n.Rel.Len() == 0 {
				return 0, nil
			}
		}
		return 1, nil
	}
	v := q.Head[0]
	hist, err := histogram(full.Nodes, full.Origin, v)
	if err != nil {
		return 0, err
	}
	total := checked.NewCounter(0)
	for _, c := range hist {
		total.Add(c)
	}
	if err := total.Err(); err != nil {
		return 0, err
	}
	return total.Value(), nil
}
