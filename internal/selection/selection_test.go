package selection

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"rankedaccess/internal/baseline"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/fd"
	"rankedaccess/internal/order"
	"rankedaccess/internal/values"
)

func lex(t *testing.T, q *cq.Query, s string) order.Lex {
	t.Helper()
	l, err := order.ParseLex(q, s)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func fig2() *database.Instance {
	in := database.NewInstance()
	in.AddRow("R", 1, 5)
	in.AddRow("R", 1, 2)
	in.AddRow("R", 6, 2)
	in.AddRow("S", 5, 3)
	in.AddRow("S", 5, 4)
	in.AddRow("S", 5, 6)
	in.AddRow("S", 2, 5)
	return in
}

func proj(q *cq.Query, a order.Answer) []values.Value {
	out := make([]values.Value, len(q.Head))
	for i, v := range q.Head {
		out[i] = a[v]
	}
	return out
}

func randomInstance(q *cq.Query, rng *rand.Rand, maxRows, domain int) *database.Instance {
	in := database.NewInstance()
	for _, a := range q.Atoms {
		if in.Relation(a.Rel) != nil {
			continue
		}
		in.SetRelation(a.Rel, database.NewRelation(len(a.Vars)))
		rows := rng.Intn(maxRows + 1)
		for r := 0; r < rows; r++ {
			row := make([]values.Value, len(a.Vars))
			for c := range row {
				row[c] = values.Value(rng.Intn(domain))
			}
			in.AddRow(a.Rel, row...)
		}
	}
	return in
}

// --- weighted selection primitive ---

func TestWeightedSelectBasic(t *testing.T) {
	items := []WItem[int64]{{Key: 5, Weight: 2}, {Key: 1, Weight: 3}, {Key: 9, Weight: 1}}
	// Sorted expansion: 1,1,1,5,5,9.
	wantKeys := []int64{1, 1, 1, 5, 5, 9}
	wantBefore := []int64{0, 0, 0, 3, 3, 5}
	for k := range wantKeys {
		cp := append([]WItem[int64](nil), items...)
		key, before, ok := WeightedSelect(cp, int64(k))
		if !ok || key != wantKeys[k] || before != wantBefore[k] {
			t.Fatalf("k=%d: (%d, %d, %v), want (%d, %d)", k, key, before, ok, wantKeys[k], wantBefore[k])
		}
	}
	if _, _, ok := WeightedSelect(append([]WItem[int64](nil), items...), 6); ok {
		t.Fatal("k = total must fail")
	}
	if _, _, ok := WeightedSelect(append([]WItem[int64](nil), items...), -1); ok {
		t.Fatal("negative k must fail")
	}
}

func TestWeightedSelectQuick(t *testing.T) {
	f := func(keys []int16, seed int64) bool {
		if len(keys) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		items := make([]WItem[int64], len(keys))
		expanded := []int64{}
		for i, x := range keys {
			wgt := int64(1 + rng.Intn(3))
			items[i] = WItem[int64]{Key: int64(x), Weight: wgt}
			for j := int64(0); j < wgt; j++ {
				expanded = append(expanded, int64(x))
			}
		}
		sort.Slice(expanded, func(i, j int) bool { return expanded[i] < expanded[j] })
		k := rng.Int63n(int64(len(expanded)))
		cp := append([]WItem[int64](nil), items...)
		key, before, ok := WeightedSelect(cp, k)
		if !ok || key != expanded[k] {
			return false
		}
		// before = #expanded strictly smaller than key.
		var want int64
		for _, x := range expanded {
			if x < key {
				want++
			}
		}
		return before == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNth(t *testing.T) {
	keys := []float64{3.5, -1, 7, 3.5, 0}
	sorted := append([]float64(nil), keys...)
	sort.Float64s(sorted)
	for k := range sorted {
		got, ok := Nth(keys, int64(k))
		if !ok || got != sorted[k] {
			t.Fatalf("Nth(%d) = %v, want %v", k, got, sorted[k])
		}
	}
	if _, ok := Nth(keys, 5); ok {
		t.Fatal("out of range Nth must fail")
	}
}

// --- LEX selection ---

// Example 6.2: ⟨v1,v2,v3⟩ and partial ⟨v1,v2⟩ on R(v1,v3),S(v3,v2) are
// both tractable for selection despite being intractable for direct
// access.
func TestSelectLexExample62(t *testing.T) {
	q := cq.MustParse("Q(v1, v2, v3) :- R(v1, v3), S(v3, v2)")
	in := database.NewInstance()
	in.AddRow("R", 1, 10)
	in.AddRow("R", 2, 10)
	in.AddRow("R", 2, 20)
	in.AddRow("S", 10, 5)
	in.AddRow("S", 10, 6)
	in.AddRow("S", 20, 5)
	for _, ord := range []string{"v1, v2, v3", "v1, v2"} {
		l := lex(t, q, ord)
		// Build the deterministic completion used by SelectLex: l's
		// variables then the remaining free ones ascending.
		full := completeForTest(q, l)
		want := baseline.SortedByLex(q, in, full)
		for k := range want {
			got, err := SelectLex(q, in, l, int64(k))
			if err != nil {
				t.Fatalf("⟨%s⟩ k=%d: %v", ord, k, err)
			}
			if !reflect.DeepEqual(proj(q, got), proj(q, want[k])) {
				t.Fatalf("⟨%s⟩ k=%d: %v, want %v", ord, k, proj(q, got), proj(q, want[k]))
			}
		}
		if _, err := SelectLex(q, in, l, int64(len(want))); !errors.Is(err, ErrOutOfBound) {
			t.Fatalf("out of bound expected, got %v", err)
		}
	}
}

// completeForTest mirrors SelectLex's internal completion.
func completeForTest(q *cq.Query, l order.Lex) order.Lex {
	completed := append([]order.LexEntry(nil), l.Entries...)
	seen := uint64(0)
	for _, e := range completed {
		seen |= 1 << uint(e.Var)
	}
	for v := 0; v < q.NumVars(); v++ {
		bit := uint64(1) << uint(v)
		if q.Free()&bit != 0 && seen&bit == 0 {
			completed = append(completed, order.LexEntry{Var: cq.VarID(v)})
		}
	}
	return order.Lex{Entries: completed}
}

func TestSelectLexNotFreeConnexRejected(t *testing.T) {
	q := cq.MustParse("Q(x, z) :- R(x, y), S(y, z)")
	_, err := SelectLex(q, fig2(), lex(t, q, "x, z"), 0)
	var ie *IntractableError
	if !errors.As(err, &ie) {
		t.Fatalf("expected IntractableError, got %v", err)
	}
}

func TestSelectLexRandomAgainstOracle(t *testing.T) {
	catalog := []struct{ src, order string }{
		{"Q(x, y, z) :- R(x, y), S(y, z)", "x, z, y"}, // disruptive trio: DA hard, selection fine
		{"Q(x, y, z) :- R(x, y), S(y, z)", "x, z"},    // not L-connex: same
		{"Q(x, y, z) :- R(x, y), S(y, z)", "z desc, x"},
		{"Q(x, y) :- R(x, y), S(y, z)", "y, x"},
		{"Q(x, y, z, u) :- R(x, y), S(y, z), T(z, u)", "x, u, z, y"},
		{"Q3(v1, v2, v3, v4) :- R(v1, v3), S(v2, v4)", "v3, v2"},
		{"Q(x, y) :- R(x), S(y)", "y desc, x desc"},
	}
	rng := rand.New(rand.NewSource(21))
	for _, c := range catalog {
		q := cq.MustParse(c.src)
		l := lex(t, q, c.order)
		for trial := 0; trial < 20; trial++ {
			in := randomInstance(q, rng, 6, 4)
			want := baseline.SortedByLex(q, in, completeForTest(q, l))
			for k := 0; k < len(want); k++ {
				got, err := SelectLex(q, in, l, int64(k))
				if err != nil {
					t.Fatalf("%s ⟨%s⟩ k=%d: %v", c.src, c.order, k, err)
				}
				if !reflect.DeepEqual(proj(q, got), proj(q, want[k])) {
					t.Fatalf("%s ⟨%s⟩ k=%d: %v, want %v", c.src, c.order, k, proj(q, got), proj(q, want[k]))
				}
			}
			if _, err := SelectLex(q, in, l, int64(len(want))); !errors.Is(err, ErrOutOfBound) {
				t.Fatalf("%s: out of bound expected", c.src)
			}
		}
	}
}

func TestSelectLexBoolean(t *testing.T) {
	q := cq.MustParse("Q() :- R(x, y), S(y, z)")
	a, err := SelectLex(q, fig2(), order.Lex{}, 0)
	if err != nil || a == nil {
		t.Fatalf("Boolean select: %v", err)
	}
	if _, err := SelectLex(q, fig2(), order.Lex{}, 1); !errors.Is(err, ErrOutOfBound) {
		t.Fatal("Boolean k=1 out of bound")
	}
}

func TestSelectLexFD(t *testing.T) {
	// Example 8.3: selection for the non-free-connex Q2P with FD.
	q := cq.MustParse("Q(x, z) :- R(x, y), S(y, z)")
	fds := fd.MustParse(q, "S: y -> z")
	in := database.NewInstance()
	in.AddRow("R", 1, 5)
	in.AddRow("R", 2, 5)
	in.AddRow("R", 2, 7)
	in.AddRow("S", 5, 30)
	in.AddRow("S", 7, 10)
	l := lex(t, q, "x, z")
	want := baseline.SortedByLex(q, in, l)
	for k := range want {
		got, err := SelectLexFD(q, in, l, fds, int64(k))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !reflect.DeepEqual(proj(q, got), proj(q, want[k])) {
			t.Fatalf("k=%d: %v, want %v", k, proj(q, got), proj(q, want[k]))
		}
	}
	// Without the FD: rejected.
	if _, err := SelectLex(q, in, l, 0); err == nil {
		t.Fatal("must be rejected without FDs")
	}
}

func TestCountAnswers(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	got, err := CountAnswers(q, fig2())
	if err != nil || got != 5 {
		t.Fatalf("count = %d, %v", got, err)
	}
	qb := cq.MustParse("Q() :- R(x, y), S(y, z)")
	got, err = CountAnswers(qb, fig2())
	if err != nil || got != 1 {
		t.Fatalf("Boolean count = %d, %v", got, err)
	}
}

// --- SUM selection ---

// sumOracle returns the sorted answer weights.
func sumOracle(q *cq.Query, in *database.Instance, w order.Sum) []float64 {
	answers := baseline.AllAnswers(q, in)
	ws := make([]float64, len(answers))
	for i, a := range answers {
		ws[i] = w.AnswerWeight(q, a)
	}
	sort.Float64s(ws)
	return ws
}

func identityAll(q *cq.Query) order.Sum {
	return order.IdentitySum(q.Head...)
}

// checkSumSelection verifies that for every k the selected answer is a
// genuine answer whose weight equals the k-th sorted weight. (Tie order
// inside an equal-weight class is implementation-defined, so weights are
// the contract.)
func checkSumSelection(t *testing.T, q *cq.Query, in *database.Instance, w order.Sum,
	sel func(k int64) (order.Answer, error)) {
	t.Helper()
	oracle := sumOracle(q, in, w)
	answerSet := map[string]bool{}
	for _, a := range baseline.AllAnswers(q, in) {
		answerSet[keyOf(q, a)] = true
	}
	seen := map[string]int{}
	for k := 0; k < len(oracle); k++ {
		a, err := sel(int64(k))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got := w.AnswerWeight(q, a); got != oracle[k] {
			t.Fatalf("k=%d: weight %v, oracle %v", k, got, oracle[k])
		}
		if !answerSet[keyOf(q, a)] {
			t.Fatalf("k=%d: %v is not an answer", k, proj(q, a))
		}
		seen[keyOf(q, a)]++
	}
	// Each answer must be returned exactly once across all ranks.
	for key, n := range seen {
		if n != 1 {
			t.Fatalf("answer %q returned %d times", key, n)
		}
	}
	if _, err := sel(int64(len(oracle))); !errors.Is(err, ErrOutOfBound) {
		t.Fatal("out of bound expected")
	}
}

func keyOf(q *cq.Query, a order.Answer) string {
	b := make([]byte, 0, 8*len(q.Head))
	for _, v := range q.Head {
		u := uint64(a[v])
		b = append(b, byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
			byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
	}
	return string(b)
}

func TestSelectSumTwoPath(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	w := identityAll(q)
	checkSumSelection(t, q, fig2(), w, func(k int64) (order.Answer, error) {
		return SelectSum(q, fig2(), w, k)
	})
}

func TestSelectSumXY(t *testing.T) {
	// X + Y: the Cartesian product of two unary atoms (mh = 2, empty key).
	q := cq.MustParse("Q(x, y) :- R(x), S(y)")
	in := database.NewInstance()
	for _, v := range []values.Value{5, 1, 9, 3} {
		in.AddRow("R", v)
	}
	for _, v := range []values.Value{2, 8, 4} {
		in.AddRow("S", v)
	}
	w := identityAll(q)
	checkSumSelection(t, q, in, w, func(k int64) (order.Answer, error) {
		return SelectSum(q, in, w, k)
	})
}

func TestSelectSumSingleAtom(t *testing.T) {
	q := cq.MustParse("Q(x, y) :- R(x, y), S(y)")
	in := database.NewInstance()
	in.AddRow("R", 1, 2)
	in.AddRow("R", 4, 2)
	in.AddRow("R", 2, 9)
	in.AddRow("S", 2)
	w := identityAll(q)
	checkSumSelection(t, q, in, w, func(k int64) (order.Answer, error) {
		return SelectSum(q, in, w, k)
	})
}

func TestSelectSumIntractableRejected(t *testing.T) {
	q := cq.MustParse("Q(x, y, z, u) :- R(x, y), S(y, z), T(z, u)")
	in := randomInstance(q, rand.New(rand.NewSource(1)), 4, 3)
	_, err := SelectSum(q, in, identityAll(q), 0)
	var ie *IntractableError
	if !errors.As(err, &ie) {
		t.Fatalf("3-path by SUM must be rejected: %v", err)
	}
}

func TestSelectSumRandomAgainstOracle(t *testing.T) {
	catalog := []string{
		"Q(x, y, z) :- R(x, y), S(y, z)",
		"Q(x, y) :- R(x), S(y)",
		"Q(x, y, z) :- R(x, y), S(y, z), T(z, u)", // fmh = 2 after projection
		"Q(x, y) :- R(x, y), S(y)",
		"Q(a, b, c) :- R(a, b), S(b, c), T(b)",
		"Q(x, u, y, z) :- R(x, u, y), S(y), T(y, z), U(x, u, y)", // Example 7.6
	}
	rng := rand.New(rand.NewSource(33))
	for _, src := range catalog {
		q := cq.MustParse(src)
		for trial := 0; trial < 15; trial++ {
			in := randomInstance(q, rng, 6, 4)
			// Random non-identity weights, including negatives and
			// repeated values to exercise tie handling.
			tables := map[cq.VarID]map[values.Value]float64{}
			for _, v := range q.Head {
				tab := map[values.Value]float64{}
				for d := values.Value(0); d < 4; d++ {
					tab[d] = float64(rng.Intn(7) - 3)
				}
				tables[v] = tab
			}
			w := order.TableSum(tables)
			checkSumSelection(t, q, in, w, func(k int64) (order.Answer, error) {
				return SelectSum(q, in, w, k)
			})
		}
	}
}

func TestSelectSumFractionalWeights(t *testing.T) {
	// Weights engineered to stress float bisection: tiny differences.
	q := cq.MustParse("Q(x, y) :- R(x), S(y)")
	in := database.NewInstance()
	tabX := map[values.Value]float64{}
	tabY := map[values.Value]float64{}
	for v := values.Value(0); v < 8; v++ {
		in.AddRow("R", v)
		in.AddRow("S", v)
		tabX[v] = float64(v) * 1e-15
		tabY[v] = float64(v) * 1e-15 * (1 + 1e-16)
	}
	x, _ := q.VarByName("x")
	y, _ := q.VarByName("y")
	w := order.TableSum(map[cq.VarID]map[values.Value]float64{x: tabX, y: tabY})
	checkSumSelection(t, q, in, w, func(k int64) (order.Answer, error) {
		return SelectSum(q, in, w, k)
	})
}

func TestSelectSumFD(t *testing.T) {
	// Example 8.3 by SUM: Q⁺ has one atom containing both free variables,
	// fmh = 1.
	q := cq.MustParse("Q(x, z) :- R(x, y), S(y, z)")
	fds := fd.MustParse(q, "S: y -> z")
	in := database.NewInstance()
	in.AddRow("R", 1, 5)
	in.AddRow("R", 2, 5)
	in.AddRow("R", 2, 7)
	in.AddRow("S", 5, 30)
	in.AddRow("S", 7, 10)
	x, _ := q.VarByName("x")
	z, _ := q.VarByName("z")
	w := order.IdentitySum(x, z)
	checkSumSelection(t, q, in, w, func(k int64) (order.Answer, error) {
		return SelectSumFD(q, in, w, fds, k)
	})
}

func TestSelectSumBoolean(t *testing.T) {
	q := cq.MustParse("Q() :- R(x, y), S(y, z)")
	if _, err := SelectSum(q, fig2(), order.NewSum(), 0); err != nil {
		t.Fatalf("Boolean SUM select: %v", err)
	}
	if _, err := SelectSum(q, fig2(), order.NewSum(), 1); !errors.Is(err, ErrOutOfBound) {
		t.Fatal("Boolean k=1 out of bound")
	}
}

func TestEncodeFMonotone(t *testing.T) {
	vals := []float64{-1e300, -2.5, -0.0, 0.0, 1e-300, 1, 2.5, 1e300}
	for i := 0; i < len(vals); i++ {
		for j := i + 1; j < len(vals); j++ {
			if vals[i] < vals[j] && encodeF(vals[i]) >= encodeF(vals[j]) {
				t.Fatalf("encodeF not monotone at %v < %v", vals[i], vals[j])
			}
		}
	}
	for _, v := range vals {
		if got := decodeF(encodeF(v)); got != v && !(v == 0 && got == 0) {
			t.Fatalf("decode(encode(%v)) = %v", v, got)
		}
	}
}
