// Package selection implements the paper's selection algorithms:
//
//   - deterministic linear-time (weighted) selection [Blum et al.;
//     Johnson–Mizoguchi], used as a primitive;
//   - selection by lexicographic orders for all free-connex CQs in ⟨1, n⟩
//     (Theorem 6.1, via the histogram of Lemma 6.5 and the iterative
//     algorithm of Lemma 6.6);
//   - selection by SUM in ⟨1, n log n⟩ for free-connex CQs with at most
//     two free-maximal hyperedges (Theorem 7.3), via maximal contraction
//     (Lemma 7.7) and selection over bucketed sorted matrices — the
//     Frederickson–Johnson setting of Theorem 7.9, realized here with an
//     exact bisection over the finite float64 sum space (same overall
//     O(n log n) bound; see DESIGN.md for the substitution note).
package selection

import (
	"cmp"
	"sort"

	"rankedaccess/internal/access"
)

// ErrOutOfBound is returned when the requested index is outside
// [0, |Q(I)|). It is the same sentinel the access package uses, so
// callers can handle both layers uniformly.
var ErrOutOfBound = access.ErrOutOfBound

// WItem is a key with a non-negative multiplicity, for weighted selection.
type WItem[K cmp.Ordered] struct {
	Key    K
	Weight int64
}

// WeightedSelect returns the key κ such that the total weight of items
// with key < κ is ≤ k and the total weight of items with key ≤ κ is > k
// (i.e. position k, 0-based, falls inside κ's weight range), together
// with the total weight strictly before κ. It runs in deterministic
// linear time via median-of-medians pivoting.
//
// The items slice is reordered. k must satisfy 0 ≤ k < total weight.
func WeightedSelect[K cmp.Ordered](items []WItem[K], k int64) (key K, before int64, ok bool) {
	var total int64
	for _, it := range items {
		total += it.Weight
	}
	if k < 0 || k >= total {
		var zero K
		return zero, 0, false
	}
	var acc int64 // weight known to be strictly before the current slice
	for {
		if len(items) == 1 {
			return items[0].Key, acc, true
		}
		pivot := medianOfMedians(items)
		var less, equal []WItem[K]
		var wLess, wEqual int64
		greater := items[:0:0]
		for _, it := range items {
			switch {
			case it.Key < pivot:
				less = append(less, it)
				wLess += it.Weight
			case it.Key == pivot:
				equal = append(equal, it)
				wEqual += it.Weight
			default:
				greater = append(greater, it)
			}
		}
		switch {
		case k < wLess:
			items = less
		case k < wLess+wEqual:
			return pivot, acc + wLess, true
		default:
			items = greater
			acc += wLess + wEqual
			k -= wLess + wEqual
		}
	}
}

// medianOfMedians returns a pivot key guaranteed to split the items
// 30/70 (the classic groups-of-five construction, by key only; weights
// do not matter for the pivot quality because the recursion re-weighs).
func medianOfMedians[K cmp.Ordered](items []WItem[K]) K {
	n := len(items)
	if n <= 10 {
		keys := make([]K, n)
		for i, it := range items {
			keys[i] = it.Key
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		return keys[n/2]
	}
	medians := make([]WItem[K], 0, (n+4)/5)
	var five [5]K
	for i := 0; i < n; i += 5 {
		m := 0
		for j := i; j < i+5 && j < n; j++ {
			five[m] = items[j].Key
			m++
		}
		part := five[:m]
		sort.Slice(part, func(a, b int) bool { return part[a] < part[b] })
		medians = append(medians, WItem[K]{Key: part[m/2], Weight: 1})
	}
	key, _, _ := WeightedSelect(medians, int64(len(medians)/2))
	return key
}

// Nth returns the k-th smallest (0-based) of keys in deterministic linear
// time. The slice is not modified.
func Nth[K cmp.Ordered](keys []K, k int64) (K, bool) {
	items := make([]WItem[K], len(keys))
	for i, x := range keys {
		items[i] = WItem[K]{Key: x, Weight: 1}
	}
	key, _, ok := WeightedSelect(items, k)
	return key, ok
}
