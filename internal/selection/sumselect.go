package selection

import (
	"fmt"
	"math"
	"sort"

	"rankedaccess/internal/checked"
	"rankedaccess/internal/classify"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/fd"
	"rankedaccess/internal/order"
	"rankedaccess/internal/reduce"
)

// SelectSum returns the k-th answer (0-based) of q over in by increasing
// total weight, in O(n log n) time (Theorem 7.3). Applicable iff q is
// free-connex with at most two free-maximal hyperedges. Ties between
// equal-weight answers are broken by an internal deterministic order
// (bucket, then side positions), not necessarily by answer values.
func SelectSum(q *cq.Query, in *database.Instance, w order.Sum, k int64) (order.Answer, error) {
	if v := classify.SelectionSum(q); !v.Tractable {
		return nil, &IntractableError{Verdict: v}
	}
	return selectSumChecked(q, in, w, k)
}

// SelectSumFD is the Theorem 8.10 variant under unary FDs.
func SelectSumFD(q *cq.Query, in *database.Instance, w order.Sum, fds fd.Set, k int64) (order.Answer, error) {
	verdict, wfd := classify.SelectionSumFD(q, fds)
	if !verdict.Tractable {
		return nil, &IntractableError{Verdict: verdict}
	}
	if err := fds.Check(q, in); err != nil {
		return nil, err
	}
	iplus, err := wfd.Ext.ExtendInstance(q, in)
	if err != nil {
		return nil, err
	}
	a, err := selectSumChecked(wfd.Ext.Query, iplus, w, k)
	if err != nil {
		return nil, err
	}
	return fd.ProjectAnswer(q, a), nil
}

func selectSumChecked(q *cq.Query, in *database.Instance, w order.Sum, k int64) (order.Answer, error) {
	if k < 0 {
		return nil, ErrOutOfBound
	}
	full, err := reduce.FreeReduce(q, in)
	if err != nil {
		return nil, err
	}
	if q.IsBoolean() {
		if err := reduceNodes(full.Nodes, full.Origin); err != nil {
			return nil, err
		}
		for _, n := range full.Nodes {
			if n.Rel.Len() == 0 {
				return nil, ErrOutOfBound
			}
		}
		if k != 0 {
			return nil, ErrOutOfBound
		}
		return make(order.Answer, q.NumVars()), nil
	}
	if err := reduceNodes(full.Nodes, full.Origin); err != nil {
		return nil, err
	}
	c := reduce.Contract(full, w)
	var ans order.Answer
	switch len(c.Full.Nodes) {
	case 1:
		ans, err = selectSingle(c, k)
	case 2:
		ans, err = selectMatrix(c, k)
	default:
		return nil, fmt.Errorf("selection: internal: contraction left %d atoms for a query classified fmh ≤ 2",
			len(c.Full.Nodes))
	}
	if err != nil {
		return nil, err
	}
	return c.Unpack(ans), nil
}

// selectSingle handles mh = 1 (Lemma 7.8): weighted selection over the
// tuples of the single relation in O(n).
func selectSingle(c *reduce.Contraction, k int64) (order.Answer, error) {
	n := c.Full.Nodes[0]
	total := int64(n.Rel.Len())
	if k >= total {
		return nil, ErrOutOfBound
	}
	ws := tupleWeights(n, c.Weights, nil)
	lambda, ok := Nth(ws, k)
	if !ok {
		return nil, ErrOutOfBound
	}
	// Deterministic tie-break: tuples with weight λ in storage order.
	var before int64
	for _, x := range ws {
		if x < lambda {
			before++
		}
	}
	j := k - before
	for i, x := range ws {
		if x == lambda {
			if j == 0 {
				return nodeAnswer(c.Full.Origin, n, i, nil, -1), nil
			}
			j--
		}
	}
	return nil, fmt.Errorf("selection: internal: tie scan exhausted")
}

// tupleWeights sums the per-variable weights of each tuple; variables in
// skip (a bitset) are excluded (used to avoid double-counting shared
// variables on the B side of the two-atom case).
func tupleWeights(n *reduce.Node, w order.Sum, skipVars []cq.VarID) []float64 {
	skip := uint64(0)
	for _, v := range skipVars {
		skip |= 1 << uint(v)
	}
	out := make([]float64, n.Rel.Len())
	for i := range out {
		t := n.Rel.Tuple(i)
		total := 0.0
		for col, v := range n.Vars {
			if skip&(1<<uint(v)) != 0 {
				continue
			}
			total += w.VarWeight(v, t[col])
		}
		out[i] = total
	}
	return out
}

// nodeAnswer assembles an answer from a tuple of node a and optionally a
// tuple of node b (bIdx < 0 for none).
func nodeAnswer(q *cq.Query, a *reduce.Node, aIdx int, b *reduce.Node, bIdx int) order.Answer {
	ans := make(order.Answer, q.NumVars())
	t := a.Rel.Tuple(aIdx)
	for col, v := range a.Vars {
		ans[v] = t[col]
	}
	if b != nil && bIdx >= 0 {
		t := b.Rel.Tuple(bIdx)
		for col, v := range b.Vars {
			ans[v] = t[col]
		}
	}
	return ans
}

// side is one side of a bucket: tuple indices sorted by weight.
type side struct {
	w   []float64
	idx []int
}

// selectMatrix handles mh = 2 (Lemma 7.10): bucket the two relations by
// their shared variables, view each bucket as a sorted matrix of pairwise
// weight sums, and select the k-th smallest sum across the union of
// matrices. The search over the sum value is an exact bisection on the
// monotone 64-bit integer encoding of float64 (≤ 64 counting passes, each
// O(n)), followed by an O(n log n) tie walk to materialize the answer.
func selectMatrix(c *reduce.Contraction, k int64) (order.Answer, error) {
	q := c.Full.Origin
	A, B := c.Full.Nodes[0], c.Full.Nodes[1]
	// Shared variables.
	var shared []cq.VarID
	for _, v := range A.Vars {
		if B.Col(v) >= 0 {
			shared = append(shared, v)
		}
	}
	// Consistency: semijoin both ways on the shared variables.
	aCols := make([]int, len(shared))
	bCols := make([]int, len(shared))
	for i, v := range shared {
		aCols[i] = A.Col(v)
		bCols[i] = B.Col(v)
	}
	A = &reduce.Node{Vars: A.Vars, Rel: A.Rel.Semijoin(aCols, B.Rel, bCols)}
	B = &reduce.Node{Vars: B.Vars, Rel: B.Rel.Semijoin(bCols, A.Rel, aCols)}

	wA := tupleWeights(A, c.Weights, nil)
	wB := tupleWeights(B, c.Weights, shared) // shared variables counted on the A side

	// Bucket by shared-variable values.
	bucketsA := map[string]*side{}
	bucketsB := map[string]*side{}
	var keys []string
	var buf []byte
	for i := 0; i < A.Rel.Len(); i++ {
		buf = database.EncodeKey(buf, A.Rel.Tuple(i), aCols)
		s := bucketsA[string(buf)]
		if s == nil {
			s = &side{}
			bucketsA[string(buf)] = s
			keys = append(keys, string(buf))
		}
		s.w = append(s.w, wA[i])
		s.idx = append(s.idx, i)
	}
	for i := 0; i < B.Rel.Len(); i++ {
		buf = database.EncodeKey(buf, B.Rel.Tuple(i), bCols)
		s := bucketsB[string(buf)]
		if s == nil {
			s = &side{}
			bucketsB[string(buf)] = s
		}
		s.w = append(s.w, wB[i])
		s.idx = append(s.idx, i)
	}
	type bucket struct{ a, b *side }
	var bs []bucket
	total := checked.NewCounter(0)
	for _, key := range keys {
		a, b := bucketsA[key], bucketsB[key]
		if a == nil || b == nil || len(a.w) == 0 || len(b.w) == 0 {
			continue
		}
		sortSide(a)
		sortSide(b)
		prod, err := checked.Mul(int64(len(a.w)), int64(len(b.w)))
		if err != nil {
			return nil, fmt.Errorf("selection: %w", err)
		}
		total.Add(prod)
		bs = append(bs, bucket{a: a, b: b})
	}
	if err := total.Err(); err != nil {
		return nil, fmt.Errorf("selection: %w", err)
	}
	if k >= total.Value() {
		return nil, ErrOutOfBound
	}

	// count(λ): pairs with sum ≤ λ (strict=false) or < λ (strict=true),
	// two-pointer staircase per bucket. Strict counting avoids ULP
	// predecessor games, which break at +0.0 vs -0.0 (they encode
	// differently but compare equal).
	count := func(lambda float64, strict bool) int64 {
		var cnt int64
		for _, bu := range bs {
			j := len(bu.b.w)
			for i := 0; i < len(bu.a.w); i++ {
				for j > 0 {
					s := bu.a.w[i] + bu.b.w[j-1]
					if s > lambda || (strict && s == lambda) {
						j--
					} else {
						break
					}
				}
				if j == 0 {
					break
				}
				cnt += int64(j)
			}
		}
		return cnt
	}
	countLE := func(lambda float64) int64 { return count(lambda, false) }

	// Bisect the float64 sum space for the smallest λ with
	// countLE(λ) ≥ k+1; λ* is then the weight of the k-th answer.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, bu := range bs {
		if s := bu.a.w[0] + bu.b.w[0]; s < lo {
			lo = s
		}
		if s := bu.a.w[len(bu.a.w)-1] + bu.b.w[len(bu.b.w)-1]; s > hi {
			hi = s
		}
	}
	eLo, eHi := encodeF(lo), encodeF(hi)
	for eLo < eHi {
		mid := eLo + (eHi-eLo)/2
		if countLE(decodeF(mid)) >= k+1 {
			eHi = mid
		} else {
			eLo = mid + 1
		}
	}
	lambda := decodeF(eLo)

	// Rank of the first answer with weight λ*: strict count below λ*.
	before := count(lambda, true)
	j := k - before

	// Walk ties in deterministic (bucket, a-position, b-range) order.
	for _, bu := range bs {
		for i := 0; i < len(bu.a.w); i++ {
			wa := bu.a.w[i]
			loJ := sort.Search(len(bu.b.w), func(x int) bool { return wa+bu.b.w[x] >= lambda })
			hiJ := sort.Search(len(bu.b.w), func(x int) bool { return wa+bu.b.w[x] > lambda })
			cnt := int64(hiJ - loJ)
			if cnt == 0 {
				continue
			}
			if j < cnt {
				return nodeAnswer(q, A, bu.a.idx[i], B, bu.b.idx[loJ+int(j)]), nil
			}
			j -= cnt
		}
	}
	return nil, fmt.Errorf("selection: internal: tie walk exhausted (λ=%v, residual %d)", lambda, j)
}

func sortSide(s *side) {
	sort.Sort(bySideWeight{s})
}

type bySideWeight struct{ s *side }

func (b bySideWeight) Len() int { return len(b.s.w) }
func (b bySideWeight) Less(i, j int) bool {
	if b.s.w[i] != b.s.w[j] {
		return b.s.w[i] < b.s.w[j]
	}
	return b.s.idx[i] < b.s.idx[j]
}
func (b bySideWeight) Swap(i, j int) {
	b.s.w[i], b.s.w[j] = b.s.w[j], b.s.w[i]
	b.s.idx[i], b.s.idx[j] = b.s.idx[j], b.s.idx[i]
}

// encodeF maps float64 to uint64 monotonically (total order, no NaNs).
func encodeF(f float64) uint64 {
	b := math.Float64bits(f)
	if b>>63 == 1 {
		return ^b
	}
	return b | (1 << 63)
}

// decodeF inverts encodeF.
func decodeF(u uint64) float64 {
	if u>>63 == 1 {
		return math.Float64frombits(u &^ (1 << 63))
	}
	return math.Float64frombits(^u)
}
