// Package reqid propagates a per-request identifier through contexts,
// so log events emitted layers below the HTTP surface (engine builds,
// rebuilds, degradation decisions) can be joined with the request log
// line that triggered them. The serve layer assigns (or adopts from
// X-Request-ID) an id per request; everything below just forwards the
// context it was given.
package reqid

import "context"

type ctxKey struct{}

// With returns a context carrying the request id.
func With(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, id)
}

// From returns the context's request id, or "" when none was set.
func From(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}
