// Package faultfs is the filesystem seam under the durability layers:
// internal/delta (the WAL) and internal/snapshot (checkpoint files)
// perform every file operation through the FS interface, so tests can
// substitute an Injector that fails, short-writes, or breaks fsync at
// the Nth operation and prove the recovery invariants (WAL append
// rollback, torn-tail salvage, checkpoint atomicity) instead of hoping
// for them.
//
// Production code uses OS(), a zero-cost passthrough to the os package.
// Chaos tests wrap it:
//
//	inj := faultfs.NewInjector(faultfs.OS())
//	inj.Inject(faultfs.Fault{Op: faultfs.OpSync, Nth: 2, Mode: faultfs.ModeFail})
//	w, _, err := delta.OpenWALFS(inj, path)
//
// A Fault triggers exactly once, when the Injector has seen Nth-1 prior
// operations of the same kind; operations after the trigger succeed
// again, so "the caller retries and recovers" is testable in the same
// process. See CONTRIBUTING.md for the policy on adding injection
// points.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// File is the slice of *os.File the durability layers use. *os.File
// satisfies it directly.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.ReaderAt
	io.Closer
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
	Name() string
}

// FS is the slice of the os package the durability layers use.
type FS interface {
	// OpenFile opens (or creates) a file, as os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a temporary file, as os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically renames a file, as os.Rename.
	Rename(oldpath, newpath string) error
	// Remove deletes a file, as os.Remove.
	Remove(name string) error
	// MkdirAll creates a directory tree, as os.MkdirAll.
	MkdirAll(path string, perm os.FileMode) error
}

// osFS is the passthrough FS.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// OS returns the real filesystem.
func OS() FS { return osFS{} }

// Op names one injectable operation kind. Write, Sync, and Truncate
// count per operation across every file opened through the FS; Open,
// CreateTemp, Rename, Remove, and MkdirAll count at the FS itself.
type Op uint8

const (
	OpOpen Op = iota
	OpCreateTemp
	OpRename
	OpRemove
	OpMkdirAll
	OpWrite
	OpSync
	OpTruncate
	numOps
)

func (o Op) String() string {
	switch o {
	case OpOpen:
		return "open"
	case OpCreateTemp:
		return "create-temp"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpMkdirAll:
		return "mkdir-all"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpTruncate:
		return "truncate"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Mode selects how a triggered fault manifests.
type Mode uint8

const (
	// ModeFail returns ErrInjected without performing the operation.
	ModeFail Mode = iota
	// ModeShortWrite (writes only) writes roughly half the buffer to the
	// underlying file, then returns ErrInjected — a torn write.
	ModeShortWrite
	// ModeFailAfter performs the operation, then returns ErrInjected —
	// the "the disk did it but reported an error" case (a sync whose
	// error the caller must treat as failure even though the data may
	// have landed).
	ModeFailAfter
)

// ErrInjected is the error every triggered fault returns (possibly
// wrapped); tests match it with errors.Is.
var ErrInjected = errors.New("faultfs: injected fault")

// Fault is one scheduled failure: the Nth operation of kind Op (1-based,
// counted from the moment the fault is armed) manifests as Mode.
type Fault struct {
	Op   Op
	Nth  int
	Mode Mode
}

// Injector wraps an FS and injects scheduled faults. Safe for
// concurrent use.
type Injector struct {
	inner FS

	mu     sync.Mutex
	counts [numOps]int
	faults []Fault
	fired  int
}

// NewInjector wraps inner (usually OS()) with no faults armed.
func NewInjector(inner FS) *Injector {
	return &Injector{inner: inner}
}

// Inject arms a fault. Multiple faults may be armed; each triggers
// independently, once.
func (in *Injector) Inject(f Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if f.Nth < 1 {
		f.Nth = 1
	}
	f.Nth += in.counts[f.Op] // Nth counts from now, not from construction
	in.faults = append(in.faults, f)
}

// Fired reports how many armed faults have triggered.
func (in *Injector) Fired() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// Reset disarms every pending fault (already-triggered ones stay
// counted in Fired).
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.faults = nil
}

// step counts one operation of kind op and reports the triggered fault,
// if any.
func (in *Injector) step(op Op) (Fault, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.counts[op]++
	for i, f := range in.faults {
		if f.Op == op && in.counts[op] == f.Nth {
			in.faults = append(in.faults[:i], in.faults[i+1:]...)
			in.fired++
			return f, true
		}
	}
	return Fault{}, false
}

func injected(op Op) error {
	return fmt.Errorf("%w: %s", ErrInjected, op)
}

func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if f, ok := in.step(OpOpen); ok && f.Mode == ModeFail {
		return nil, injected(OpOpen)
	}
	file, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{File: file, in: in}, nil
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if f, ok := in.step(OpCreateTemp); ok && f.Mode == ModeFail {
		return nil, injected(OpCreateTemp)
	}
	file, err := in.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{File: file, in: in}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if f, ok := in.step(OpRename); ok {
		if f.Mode == ModeFail {
			return injected(OpRename)
		}
		if err := in.inner.Rename(oldpath, newpath); err != nil {
			return err
		}
		return injected(OpRename)
	}
	return in.inner.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if f, ok := in.step(OpRemove); ok && f.Mode == ModeFail {
		return injected(OpRemove)
	}
	return in.inner.Remove(name)
}

func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	if f, ok := in.step(OpMkdirAll); ok && f.Mode == ModeFail {
		return injected(OpMkdirAll)
	}
	return in.inner.MkdirAll(path, perm)
}

// injFile intercepts the per-file operations of a file opened through
// an Injector.
type injFile struct {
	File
	in *Injector
}

func (f *injFile) Write(p []byte) (int, error) {
	if ft, ok := f.in.step(OpWrite); ok {
		switch ft.Mode {
		case ModeFail:
			return 0, injected(OpWrite)
		case ModeShortWrite:
			n, err := f.File.Write(p[:len(p)/2])
			if err != nil {
				return n, err
			}
			return n, injected(OpWrite)
		case ModeFailAfter:
			n, err := f.File.Write(p)
			if err != nil {
				return n, err
			}
			return n, injected(OpWrite)
		}
	}
	return f.File.Write(p)
}

func (f *injFile) Sync() error {
	if ft, ok := f.in.step(OpSync); ok {
		switch ft.Mode {
		case ModeFail:
			return injected(OpSync)
		case ModeShortWrite, ModeFailAfter:
			if err := f.File.Sync(); err != nil {
				return err
			}
			return injected(OpSync)
		}
	}
	return f.File.Sync()
}

func (f *injFile) Truncate(size int64) error {
	if ft, ok := f.in.step(OpTruncate); ok && ft.Mode == ModeFail {
		return injected(OpTruncate)
	}
	return f.File.Truncate(size)
}
