package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestOSFilePassthrough(t *testing.T) {
	fsys := OS()
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
}

// TestInjectNthWriteFailsOnceThenRecovers is the core contract: the Nth
// write fails, the N+1st succeeds, so retry-and-recover is testable.
func TestInjectNthWriteFailsOnceThenRecovers(t *testing.T) {
	inj := NewInjector(OS())
	inj.Inject(Fault{Op: OpWrite, Nth: 2, Mode: ModeFail})
	f, err := inj.OpenFile(filepath.Join(t.TempDir(), "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("a")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := f.Write([]byte("b")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2: want ErrInjected, got %v", err)
	}
	if _, err := f.Write([]byte("c")); err != nil {
		t.Fatalf("write 3 after fault: %v", err)
	}
	if got := inj.Fired(); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
}

func TestShortWriteLandsPartialBytes(t *testing.T) {
	inj := NewInjector(OS())
	inj.Inject(Fault{Op: OpWrite, Nth: 1, Mode: ModeShortWrite})
	path := filepath.Join(t.TempDir(), "f")
	f, err := inj.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdefgh"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if n != 4 {
		t.Fatalf("short write landed %d bytes, want 4", n)
	}
	f.Close()
	got, _ := os.ReadFile(path)
	if string(got) != "abcd" {
		t.Fatalf("file holds %q, want the torn half", got)
	}
}

func TestSyncFailModes(t *testing.T) {
	inj := NewInjector(OS())
	inj.Inject(Fault{Op: OpSync, Nth: 1, Mode: ModeFail})
	inj.Inject(Fault{Op: OpSync, Nth: 2, Mode: ModeFailAfter})
	f, err := inj.OpenFile(filepath.Join(t.TempDir(), "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 1: want ErrInjected, got %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 2 (fail-after): want ErrInjected, got %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 3: %v", err)
	}
}

// TestInjectCountsFromArming proves Nth is relative to the moment the
// fault is armed, not to Injector construction — so a test can run a
// setup phase through the same Injector and then schedule "the next
// sync fails".
func TestInjectCountsFromArming(t *testing.T) {
	inj := NewInjector(OS())
	f, err := inj.OpenFile(filepath.Join(t.TempDir(), "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 3; i++ {
		if _, err := f.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	inj.Inject(Fault{Op: OpWrite, Nth: 1, Mode: ModeFail})
	if _, err := f.Write([]byte("y")); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected on next write, got %v", err)
	}
}

func TestRenameAndOpenFaults(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS())
	inj.Inject(Fault{Op: OpRename, Nth: 1, Mode: ModeFail})
	src := filepath.Join(dir, "src")
	if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := inj.Rename(src, filepath.Join(dir, "dst")); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename: want ErrInjected, got %v", err)
	}
	if _, err := os.Stat(src); err != nil {
		t.Fatalf("ModeFail rename must not move the file: %v", err)
	}
	if err := inj.Rename(src, filepath.Join(dir, "dst")); err != nil {
		t.Fatalf("rename after fault: %v", err)
	}

	inj.Inject(Fault{Op: OpOpen, Nth: 1, Mode: ModeFail})
	if _, err := inj.OpenFile(filepath.Join(dir, "f"), os.O_RDWR|os.O_CREATE, 0o644); !errors.Is(err, ErrInjected) {
		t.Fatalf("open: want ErrInjected, got %v", err)
	}
}

func TestReset(t *testing.T) {
	inj := NewInjector(OS())
	inj.Inject(Fault{Op: OpRemove, Nth: 1, Mode: ModeFail})
	inj.Reset()
	if err := inj.Remove(filepath.Join(t.TempDir(), "absent")); errors.Is(err, ErrInjected) {
		t.Fatal("Reset must disarm pending faults")
	}
}
