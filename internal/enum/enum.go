// Package enum provides the enumeration modes the paper positions direct
// access against:
//
//   - RankedLex: ranked enumeration by a lexicographic order, a trivial
//     client of the direct-access structure (§2.5 "Ranked enumeration");
//   - SumEnumerator: ranked enumeration by SUM with logarithmic delay
//     after quasilinear preprocessing for *every* free-connex CQ — the
//     any-k setting [41, 42] that §5 contrasts with direct access by SUM
//     (which is tractable for far fewer queries);
//   - RandomOrder: uniformly random-permutation enumeration via direct
//     access, the application of Carmeli et al. [15] recalled in §1.
package enum

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"rankedaccess/internal/access"
	"rankedaccess/internal/classify"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/order"
	"rankedaccess/internal/reduce"
	"rankedaccess/internal/tupleidx"
	"rankedaccess/internal/values"
)

// RankedLex enumerates the answers of a tractable (query, lex-order) pair
// in order, calling emit with the index and answer; it stops early if
// emit returns false. Each emitted answer is freshly allocated and may
// be retained; use RankedLexBuffered when emit only inspects answers.
func RankedLex(la *access.Lex, emit func(k int64, a order.Answer) bool) error {
	for k := int64(0); k < la.Total(); k++ {
		a, err := la.Access(k)
		if err != nil {
			return err
		}
		if !emit(k, a) {
			return nil
		}
	}
	return nil
}

// RankedLexBuffered is RankedLex with one probe buffer reused across the
// whole enumeration: the loop performs zero allocations per answer, and
// the answer passed to emit aliases the buffer, so emit must copy
// anything it wants to keep past its return.
func RankedLexBuffered(la *access.Lex, emit func(k int64, a order.Answer) bool) error {
	buf := la.NewBuf()
	for k := int64(0); k < la.Total(); k++ {
		a, err := la.AccessInto(buf, k)
		if err != nil {
			return err
		}
		if !emit(k, a) {
			return nil
		}
	}
	return nil
}

// RandomOrder enumerates Q(I) in a uniformly random permutation with
// logarithmic delay, using a direct-access structure in an arbitrary
// tractable order plus a lazily materialized Fisher–Yates shuffle of the
// index space (sampling without replacement). Works for every
// free-connex CQ.
func RandomOrder(q *cq.Query, in *database.Instance, rng *rand.Rand,
	emit func(a order.Answer) bool) error {
	la, err := access.BuildLex(q, in, order.Lex{})
	if err != nil {
		return err
	}
	n := la.Total()
	moved := make(map[int64]int64)
	at := func(i int64) int64 {
		if v, ok := moved[i]; ok {
			return v
		}
		return i
	}
	for t := int64(0); t < n; t++ {
		j := t + rng.Int63n(n-t)
		vt, vj := at(t), at(j)
		moved[j] = vt
		a, err := la.Access(vj)
		if err != nil {
			return err
		}
		if !emit(a) {
			return nil
		}
	}
	return nil
}

// --- Ranked enumeration by SUM (any-k) ---

// SumEnumerator enumerates the answers of a free-connex CQ by
// non-decreasing total weight with O(log n) delay after O(n log n)
// preprocessing: a Lawler-style lazy expansion over the join tree's DFS
// serialization, with exact lower bounds from a best-completion dynamic
// program (the any-k recipe of the algorithms the paper cites as [41]).
type SumEnumerator struct {
	q      *cq.Query
	nodes  []*reduce.Node
	dfs    []int // node indices in DFS pre-order (parents before children)
	parent []int // parent node index per node index (-1 for root)

	tw      [][]float64   // tuple weight per node
	best    [][]float64   // best completion of the tuple's subtree
	buckets []nodeBuckets // per node: join-key bucket table
	pq      expHeap
	boolean bool
	done    bool
}

// nodeBuckets groups a node's tuples by join key with the parent: idx
// maps the key columns (child side) to a dense bucket id, lists[id] is
// the bucket's tuple list sorted by best-completion weight, and
// parentCols are the aligned parent-side columns used to probe without
// materializing a key. The root has idx == nil and a single list.
type nodeBuckets struct {
	idx        *tupleidx.Index
	lists      [][]int
	parentCols []int
}

// expansion is a Lawler state: for the first len(ranks) nodes of the DFS
// order, ranks[i] is the position of the chosen tuple inside its bucket's
// best-sorted list; bound is the exact minimal weight of any completion.
// Every state is generated exactly once: from its predecessor in the last
// component (ranks[last]-1), or by extension with rank 0.
type expansion struct {
	ranks []int32
	bound float64
}

type expHeap []*expansion

func (h expHeap) Len() int           { return len(h) }
func (h expHeap) Less(i, j int) bool { return h[i].bound < h[j].bound }
func (h expHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *expHeap) Push(x any)        { *h = append(*h, x.(*expansion)) }
func (h *expHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewSumEnumerator prepares ranked enumeration by SUM for any free-connex
// CQ. Queries outside that class yield an error carrying the certificate.
func NewSumEnumerator(q *cq.Query, in *database.Instance, w order.Sum) (*SumEnumerator, error) {
	// Free-connexity is the exact tractability frontier for ranked
	// enumeration by SUM (the contrast recalled in §5); the SelectionLex
	// classifier tests precisely free-connexity.
	if v := classify.SelectionLex(q, order.Lex{}); !v.Tractable {
		return nil, fmt.Errorf("enum: %s", v.String())
	}
	full, err := reduce.FreeReduce(q, in)
	if err != nil {
		return nil, err
	}
	tree, err := reduce.BuildTree(full)
	if err != nil {
		return nil, err
	}
	tree.Yannakakis()

	e := &SumEnumerator{q: q, nodes: full.Nodes, parent: tree.Parent}
	if q.IsBoolean() {
		e.boolean = true
		for _, n := range full.Nodes {
			if n.Rel.Len() == 0 {
				e.done = true
			}
		}
		return e, nil
	}

	var walk func(int)
	walk = func(u int) {
		e.dfs = append(e.dfs, u)
		for _, c := range tree.Children[u] {
			walk(c)
		}
	}
	walk(tree.Root)

	// Attribute weights become tuple weights on the first node that
	// mentions each variable (§2.2 "Attribute Weights vs. Tuple Weights").
	assigned := make(map[cq.VarID]int)
	for _, u := range e.dfs {
		for _, v := range full.Nodes[u].Vars {
			if _, ok := assigned[v]; !ok {
				assigned[v] = u
			}
		}
	}
	e.tw = make([][]float64, len(full.Nodes))
	for _, u := range e.dfs {
		n := full.Nodes[u]
		tw := make([]float64, n.Rel.Len())
		for i := range tw {
			t := n.Rel.Tuple(i)
			for c, v := range n.Vars {
				if assigned[v] == u {
					tw[i] += w.VarWeight(v, t[c])
				}
			}
		}
		e.tw[u] = tw
	}
	if err := e.prepare(tree); err != nil {
		return nil, err
	}
	return e, nil
}

// NewTupleSumEnumerator prepares ranked enumeration by the sum of
// *tuple* weights — the alternative convention of §2.2 used by the
// ranked-enumeration literature the paper builds on. It applies to full
// self-join-free CQs (where the paper notes the semantics are clear) with
// no repeated variables inside an atom. tw maps a relation symbol and a
// tuple (by value, which is well-defined under set semantics) to its
// weight; relations without an entry weigh 0.
func NewTupleSumEnumerator(q *cq.Query, in *database.Instance, tw order.TupleSum) (*SumEnumerator, error) {
	if !q.IsFull() {
		return nil, fmt.Errorf("enum: tuple-weight enumeration requires a full CQ")
	}
	if !q.IsSelfJoinFree() {
		return nil, fmt.Errorf("enum: tuple-weight enumeration requires a self-join-free CQ")
	}
	if q.HasRepeatedVarInAtom() {
		return nil, fmt.Errorf("enum: tuple-weight enumeration requires atoms without repeated variables")
	}
	if v := classify.SelectionLex(q, order.Lex{}); !v.Tractable {
		return nil, fmt.Errorf("enum: %s", v.String())
	}
	full, err := reduce.FreeReduce(q, in)
	if err != nil {
		return nil, err
	}
	tree, err := reduce.BuildTree(full)
	if err != nil {
		return nil, err
	}
	tree.Yannakakis()

	e := &SumEnumerator{q: q, nodes: full.Nodes, parent: tree.Parent}
	var walk func(int)
	walk = func(u int) {
		e.dfs = append(e.dfs, u)
		for _, c := range tree.Children[u] {
			walk(c)
		}
	}
	walk(tree.Root)

	// Match each surviving node to the atoms it absorbed: FreeReduce on a
	// full repeated-variable-free CQ only absorbs atoms into superset
	// atoms; a node's weight is its own atom's tuple weight plus, for
	// every absorbed atom, the weight of the (unique) projected tuple.
	nodeSets := make([]uint64, len(full.Nodes))
	for i, n := range full.Nodes {
		nodeSets[i] = uint64(n.VarSet())
	}
	e.tw = make([][]float64, len(full.Nodes))
	for i, n := range full.Nodes {
		e.tw[i] = make([]float64, n.Rel.Len())
	}
	for ai := range q.Atoms {
		atom := q.Atoms[ai]
		fn := tw[atom.Rel]
		if fn == nil {
			continue
		}
		// Host node: the first node whose variables contain the atom's.
		host := -1
		av := uint64(q.AtomVars(ai))
		for i := range full.Nodes {
			if av&^nodeSets[i] == 0 {
				host = i
				break
			}
		}
		if host < 0 {
			return nil, fmt.Errorf("enum: internal: atom %s not covered by any node", atom.Rel)
		}
		hn := full.Nodes[host]
		cols := make([]int, len(atom.Vars))
		for j, v := range atom.Vars {
			cols[j] = hn.Col(v)
		}
		buf := make([]values.Value, len(cols))
		for t := 0; t < hn.Rel.Len(); t++ {
			row := hn.Rel.Tuple(t)
			for j, c := range cols {
				buf[j] = row[c]
			}
			e.tw[host][t] += fn(buf)
		}
	}
	if err := e.prepare(tree); err != nil {
		return nil, err
	}
	return e, nil
}

// prepare computes best-completion values, buckets, and seeds the heap,
// given e.tw. Factored out of the two constructors.
func (e *SumEnumerator) prepare(tree *reduce.Tree) error {
	// best(t) = tw(t) + Σ over children of the minimum best in the
	// child's joining bucket; computed bottom-up (reverse DFS order).
	e.best = make([][]float64, len(e.nodes))
	e.buckets = make([]nodeBuckets, len(e.nodes))
	for i := len(e.dfs) - 1; i >= 0; i-- {
		u := e.dfs[i]
		n := e.nodes[u]
		bestU := append([]float64(nil), e.tw[u]...)
		for _, c := range tree.Children[u] {
			child := e.nodes[c]
			uCols, cCols := reduce.SharedCols(n, child)
			bk := tupleidx.New(len(cCols), child.Rel.Len())
			lists := make([][]int, 0, child.Rel.Len())
			for t := 0; t < child.Rel.Len(); t++ {
				id, added := bk.InsertCols(child.Rel.Tuple(t), cCols)
				if added {
					lists = append(lists, nil)
				}
				lists[id] = append(lists[id], t)
			}
			for _, lst := range lists {
				sort.Slice(lst, func(a, b int) bool { return e.best[c][lst[a]] < e.best[c][lst[b]] })
			}
			e.buckets[c] = nodeBuckets{idx: bk, lists: lists, parentCols: uCols}
			for t := 0; t < n.Rel.Len(); t++ {
				// The child-side key over cCols equals the parent-side
				// values over uCols in the same pairing order.
				id, ok := bk.LookupCols(n.Rel.Tuple(t), uCols)
				if !ok {
					return fmt.Errorf("enum: internal: dangling tuple after reduction")
				}
				bestU[t] += e.best[c][lists[id][0]]
			}
		}
		e.best[u] = bestU
	}

	// Root bucket: all root tuples under the empty key.
	root := e.dfs[0]
	rootIdx := make([]int, e.nodes[root].Rel.Len())
	for i := range rootIdx {
		rootIdx[i] = i
	}
	sort.Slice(rootIdx, func(a, b int) bool { return e.best[root][rootIdx[a]] < e.best[root][rootIdx[b]] })
	e.buckets[root] = nodeBuckets{lists: [][]int{rootIdx}}

	if len(rootIdx) > 0 {
		heap.Push(&e.pq, &expansion{ranks: []int32{0}, bound: e.best[root][rootIdx[0]]})
	}
	return nil
}

// bucketFor returns the best-sorted tuple list of node u given the
// parent's chosen tuple (or the root bucket). Probes are allocation-free:
// the parent tuple is hashed column-wise, no key is materialized.
func (e *SumEnumerator) bucketFor(u int, chosen []int) []int {
	p := e.parent[u]
	bk := &e.buckets[u]
	if p < 0 {
		return bk.lists[0]
	}
	id, ok := bk.idx.LookupCols(e.nodes[p].Rel.Tuple(chosen[p]), bk.parentCols)
	if !ok {
		return nil
	}
	return bk.lists[id]
}

// Next returns the next answer in non-decreasing weight order together
// with its weight; ok is false when the enumeration is exhausted. Delay
// is O(log n) (heap operations on states of constant length).
func (e *SumEnumerator) Next() (a order.Answer, weight float64, ok bool) {
	if e.boolean {
		if e.done {
			return nil, 0, false
		}
		e.done = true
		return make(order.Answer, e.q.NumVars()), 0, true
	}
	if e.pq.Len() == 0 {
		return nil, 0, false
	}
	s := heap.Pop(&e.pq).(*expansion)

	// Re-resolve the chosen tuples of the state's prefix.
	chosen := make([]int, len(e.nodes))
	for i := range chosen {
		chosen[i] = -1
	}
	last := len(s.ranks) - 1
	var lastList []int
	for i := 0; i <= last; i++ {
		u := e.dfs[i]
		lst := e.bucketFor(u, chosen)
		chosen[u] = lst[int(s.ranks[i])]
		if i == last {
			lastList = lst
		}
	}
	// (a) Sibling of the state's last component: generated here, exactly
	// once per chain step.
	if r := int(s.ranks[last]); r+1 < len(lastList) {
		u := e.dfs[last]
		adv := &expansion{
			ranks: append([]int32(nil), s.ranks...),
			bound: s.bound + e.best[u][lastList[r+1]] - e.best[u][lastList[r]],
		}
		adv.ranks[last]++
		heap.Push(&e.pq, adv)
	}
	// (b) Extend to a complete state with rank 0 everywhere, pushing the
	// rank-1 sibling of each newly assigned node (bound deltas are exact
	// because deeper nodes are still open at push time).
	for i := last + 1; i < len(e.dfs); i++ {
		u := e.dfs[i]
		lst := e.bucketFor(u, chosen)
		if len(lst) > 1 {
			adv := &expansion{
				ranks: append(append([]int32(nil), s.ranks...), 1),
				bound: s.bound + e.best[u][lst[1]] - e.best[u][lst[0]],
			}
			heap.Push(&e.pq, adv)
		}
		s.ranks = append(s.ranks, 0)
		chosen[u] = lst[0]
	}
	// Assemble the answer.
	a = make(order.Answer, e.q.NumVars())
	for u, t := range chosen {
		if t < 0 {
			continue
		}
		n := e.nodes[u]
		tu := n.Rel.Tuple(t)
		for c, v := range n.Vars {
			a[v] = tu[c]
		}
	}
	return a, s.bound, true
}

// Drain runs the enumeration to completion, returning all answers in
// order (for tests and small outputs).
func (e *SumEnumerator) Drain(limit int64) (answers []order.Answer, weights []float64) {
	for limit != 0 {
		a, w, ok := e.Next()
		if !ok {
			break
		}
		answers = append(answers, a)
		weights = append(weights, w)
		if limit > 0 {
			limit--
		}
	}
	return answers, weights
}
