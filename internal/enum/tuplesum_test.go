package enum

import (
	"math/rand"
	"sort"
	"testing"

	"rankedaccess/internal/baseline"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/order"
	"rankedaccess/internal/values"
)

// tupleSumOracle sorts the answers by tuple-weight totals.
func tupleSumOracle(q *cq.Query, in *database.Instance, ts order.TupleSum) []float64 {
	answers := baseline.AllAnswers(q, in)
	ws := make([]float64, len(answers))
	for i, a := range answers {
		ws[i] = ts.AnswerWeight(q, a)
	}
	sort.Float64s(ws)
	return ws
}

func TestTupleSumEnumeratorBasic(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	ts := order.TupleSum{
		// Weight R tuples by 10·x, S tuples by z (arbitrary mixed scheme
		// that no attribute-weight assignment could express per-tuple).
		"R": func(tu []values.Value) float64 { return float64(10 * tu[0]) },
		"S": func(tu []values.Value) float64 { return float64(tu[1]) },
	}
	e, err := NewTupleSumEnumerator(q, fig2(), ts)
	if err != nil {
		t.Fatal(err)
	}
	answers, weights := e.Drain(-1)
	oracle := tupleSumOracle(q, fig2(), ts)
	if len(answers) != len(oracle) {
		t.Fatalf("enumerated %d, oracle %d", len(answers), len(oracle))
	}
	for i := range oracle {
		if weights[i] != oracle[i] {
			t.Fatalf("weights = %v, oracle %v", weights, oracle)
		}
		if got := ts.AnswerWeight(q, answers[i]); got != weights[i] {
			t.Fatalf("reported weight %v != recomputed %v", weights[i], got)
		}
	}
}

// Absorbed atoms must contribute their tuple weights exactly once: S(y)
// is absorbed into R(x, y), and its weight rides along.
func TestTupleSumAbsorbedAtomWeights(t *testing.T) {
	q := cq.MustParse("Q(x, y) :- R(x, y), S(y)")
	in := database.NewInstance()
	in.AddRow("R", 1, 5)
	in.AddRow("R", 2, 5)
	in.AddRow("R", 3, 7)
	in.AddRow("S", 5)
	in.AddRow("S", 7)
	ts := order.TupleSum{
		"R": func(tu []values.Value) float64 { return float64(tu[0]) },
		"S": func(tu []values.Value) float64 { return float64(100 * tu[0]) },
	}
	e, err := NewTupleSumEnumerator(q, in, ts)
	if err != nil {
		t.Fatal(err)
	}
	_, weights := e.Drain(-1)
	oracle := tupleSumOracle(q, in, ts)
	if len(weights) != len(oracle) {
		t.Fatalf("enumerated %d, oracle %d", len(weights), len(oracle))
	}
	for i := range oracle {
		if weights[i] != oracle[i] {
			t.Fatalf("weights = %v, oracle %v", weights, oracle)
		}
	}
	// Sanity: the absorbed S weight is visible (501 = 1 + 100·5).
	if weights[0] != 501 {
		t.Fatalf("first weight = %v, want 501", weights[0])
	}
}

func TestTupleSumRejections(t *testing.T) {
	in := database.NewInstance()
	in.AddRow("R", 1, 2)
	ts := order.TupleSum{}
	if _, err := NewTupleSumEnumerator(cq.MustParse("Q(x) :- R(x, y)"), in, ts); err == nil {
		t.Fatal("projection must be rejected")
	}
	in2 := database.NewInstance()
	in2.AddRow("R", 1, 2)
	if _, err := NewTupleSumEnumerator(cq.MustParse("Q(x, y, z) :- R(x, y), R(y, z)"), in2, ts); err == nil {
		t.Fatal("self-join must be rejected")
	}
	in3 := database.NewInstance()
	in3.AddRow("R", 1, 1)
	if _, err := NewTupleSumEnumerator(cq.MustParse("Q(x) :- R(x, x)"), in3, ts); err == nil {
		t.Fatal("repeated variable must be rejected")
	}
}

func TestTupleSumRandomAgainstOracle(t *testing.T) {
	catalog := []string{
		"Q(x, y, z) :- R(x, y), S(y, z)",
		"Q(x, y, z, u) :- R(x, y), S(y, z), T(z, u)",
		"Q(x, y) :- R(x, y), S(y)",
		"Q5(v1, v2, v3, v4, v5) :- R1(v1, v3), R2(v3, v4), R3(v2, v5)",
	}
	rng := rand.New(rand.NewSource(81))
	for _, src := range catalog {
		q := cq.MustParse(src)
		for trial := 0; trial < 12; trial++ {
			in := randomInstance(q, rng, 6, 4)
			// Random per-tuple weight tables keyed by encoded tuple.
			ts := order.TupleSum{}
			for _, atom := range q.Atoms {
				tab := map[string]float64{}
				seed := rng.Int63()
				rel := atom.Rel
				ts[rel] = func(tu []values.Value) float64 {
					key := ""
					for _, v := range tu {
						key += "|"
						key += string(rune(v + 100))
					}
					if w, ok := tab[key]; ok {
						return w
					}
					h := seed
					for _, v := range tu {
						h = h*31 + int64(v)
					}
					w := float64(h%11 - 5)
					tab[key] = w
					return w
				}
			}
			e, err := NewTupleSumEnumerator(q, in, ts)
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			_, weights := e.Drain(-1)
			oracle := tupleSumOracle(q, in, ts)
			if len(weights) != len(oracle) {
				t.Fatalf("%s trial %d: %d vs oracle %d", src, trial, len(weights), len(oracle))
			}
			for i := range oracle {
				if weights[i] != oracle[i] {
					t.Fatalf("%s trial %d: weight #%d = %v, oracle %v", src, trial, i, weights[i], oracle[i])
				}
			}
		}
	}
}
