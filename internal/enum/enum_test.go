package enum

import (
	"math/rand"
	"sort"
	"testing"

	"rankedaccess/internal/access"
	"rankedaccess/internal/baseline"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/order"
	"rankedaccess/internal/values"
)

func fig2() *database.Instance {
	in := database.NewInstance()
	in.AddRow("R", 1, 5)
	in.AddRow("R", 1, 2)
	in.AddRow("R", 6, 2)
	in.AddRow("S", 5, 3)
	in.AddRow("S", 5, 4)
	in.AddRow("S", 5, 6)
	in.AddRow("S", 2, 5)
	return in
}

func randomInstance(q *cq.Query, rng *rand.Rand, maxRows, domain int) *database.Instance {
	in := database.NewInstance()
	for _, a := range q.Atoms {
		if in.Relation(a.Rel) != nil {
			continue
		}
		in.SetRelation(a.Rel, database.NewRelation(len(a.Vars)))
		rows := rng.Intn(maxRows + 1)
		for r := 0; r < rows; r++ {
			row := make([]values.Value, len(a.Vars))
			for c := range row {
				row[c] = values.Value(rng.Intn(domain))
			}
			in.AddRow(a.Rel, row...)
		}
	}
	return in
}

func keyOf(q *cq.Query, a order.Answer) string {
	b := make([]byte, 0, 8*len(q.Head))
	for _, v := range q.Head {
		u := uint64(a[v])
		b = append(b, byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
			byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
	}
	return string(b)
}

func TestRankedLex(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	l, _ := order.ParseLex(q, "x, y, z")
	la, err := access.BuildLex(q, fig2(), l)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	if err := RankedLex(la, func(k int64, a order.Answer) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("enumerated %d answers", len(got))
	}
	// Early stop.
	count := 0
	if err := RankedLex(la, func(k int64, a order.Answer) bool {
		count++
		return count < 2
	}); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("early stop enumerated %d", count)
	}
}

// Ranked enumeration by SUM on the 2-path — the paper's contrast: DA by
// SUM is intractable here, but ranked enumeration is fine.
func TestSumEnumeratorFig2(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	w := order.IdentitySum(q.Head...)
	e, err := NewSumEnumerator(q, fig2(), w)
	if err != nil {
		t.Fatal(err)
	}
	_, weights := e.Drain(-1)
	want := []float64{8, 9, 10, 12, 13}
	if len(weights) != len(want) {
		t.Fatalf("enumerated %d answers", len(weights))
	}
	for i := range want {
		if weights[i] != want[i] {
			t.Fatalf("weights = %v, want %v", weights, want)
		}
	}
}

// The full 3-path (fmh = 3): selection by SUM is intractable, yet ranked
// enumeration must still work — this is exactly the gap the paper maps.
func TestSumEnumerator3Path(t *testing.T) {
	q := cq.MustParse("Q(x, y, z, u) :- R(x, y), S(y, z), T(z, u)")
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(q, rng, 6, 3)
		w := order.IdentitySum(q.Head...)
		checkEnumeration(t, q, in, w)
	}
}

// checkEnumeration verifies order, multiplicity, and weight agreement
// against the oracle.
func checkEnumeration(t *testing.T, q *cq.Query, in *database.Instance, w order.Sum) {
	t.Helper()
	e, err := NewSumEnumerator(q, in, w)
	if err != nil {
		t.Fatal(err)
	}
	answers, weights := e.Drain(-1)
	oracle := baseline.SortedBySum(q, in, w)
	if len(answers) != len(oracle) {
		t.Fatalf("enumerated %d answers, oracle %d", len(answers), len(oracle))
	}
	seen := map[string]int{}
	for i, a := range answers {
		if i > 0 && weights[i] < weights[i-1] {
			t.Fatalf("weights not sorted at %d: %v < %v", i, weights[i], weights[i-1])
		}
		if got, want := w.AnswerWeight(q, a), w.AnswerWeight(q, oracle[i]); got != want {
			t.Fatalf("weight #%d = %v, oracle %v", i, got, want)
		}
		if got := w.AnswerWeight(q, a); got != weights[i] {
			t.Fatalf("reported weight %v, actual %v", weights[i], got)
		}
		seen[keyOf(q, a)]++
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("answer %q enumerated %d times", k, n)
		}
	}
}

func TestSumEnumeratorRandomQueries(t *testing.T) {
	catalog := []string{
		"Q(x, y, z) :- R(x, y), S(y, z)",
		"Q(x, y) :- R(x), S(y)",
		"Q(x, y) :- R(x, y), S(y, z)",
		"Q(a, b, c, d) :- R(a, b), S(b, c), T(c, d), U(b)",
		"Q5(v1, v2, v3, v4, v5) :- R1(v1, v3), R2(v3, v4), R3(v2, v5)",
	}
	rng := rand.New(rand.NewSource(29))
	for _, src := range catalog {
		q := cq.MustParse(src)
		for trial := 0; trial < 10; trial++ {
			in := randomInstance(q, rng, 5, 4)
			tables := map[cq.VarID]map[values.Value]float64{}
			for _, v := range q.Head {
				tab := map[values.Value]float64{}
				for d := values.Value(0); d < 4; d++ {
					tab[d] = float64(rng.Intn(9) - 4)
				}
				tables[v] = tab
			}
			checkEnumeration(t, q, in, order.TableSum(tables))
		}
	}
}

func TestSumEnumeratorRejectsNonFreeConnex(t *testing.T) {
	q := cq.MustParse("Q(x, z) :- R(x, y), S(y, z)")
	if _, err := NewSumEnumerator(q, fig2(), order.NewSum()); err == nil {
		t.Fatal("non-free-connex query must be rejected")
	}
}

func TestSumEnumeratorBoolean(t *testing.T) {
	q := cq.MustParse("Q() :- R(x, y), S(y, z)")
	e, err := NewSumEnumerator(q, fig2(), order.NewSum())
	if err != nil {
		t.Fatal(err)
	}
	answers, _ := e.Drain(-1)
	if len(answers) != 1 {
		t.Fatalf("Boolean true must enumerate one answer, got %d", len(answers))
	}
}

func TestSumEnumeratorLimit(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	e, _ := NewSumEnumerator(q, fig2(), order.IdentitySum(q.Head...))
	answers, _ := e.Drain(2)
	if len(answers) != 2 {
		t.Fatalf("limit 2 enumerated %d", len(answers))
	}
}

// RandomOrder must produce each answer exactly once, and different seeds
// should (overwhelmingly) produce different permutations.
func TestRandomOrderPermutation(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	perm := func(seed int64) []string {
		var out []string
		err := RandomOrder(q, fig2(), rand.New(rand.NewSource(seed)), func(a order.Answer) bool {
			out = append(out, keyOf(q, a))
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	p1 := perm(1)
	if len(p1) != 5 {
		t.Fatalf("permutation has %d answers", len(p1))
	}
	sorted := append([]string(nil), p1...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			t.Fatal("duplicate answer in permutation")
		}
	}
	// With 5! = 120 permutations, 20 seeds should not all agree.
	allSame := true
	for seed := int64(2); seed < 22; seed++ {
		p := perm(seed)
		for i := range p {
			if p[i] != p1[i] {
				allSame = false
			}
		}
	}
	if allSame {
		t.Fatal("all seeds produced the same permutation")
	}
}

// Statistical sanity: over many seeds, each answer should appear in the
// first position with roughly uniform frequency.
func TestRandomOrderUniformFirst(t *testing.T) {
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	counts := map[string]int{}
	const trials = 3000
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		_ = RandomOrder(q, fig2(), rng, func(a order.Answer) bool {
			counts[keyOf(q, a)]++
			return false // only the first answer
		})
	}
	if len(counts) != 5 {
		t.Fatalf("only %d distinct first answers", len(counts))
	}
	for k, c := range counts {
		// Expected 600 each; allow a generous ±40%.
		if c < 360 || c > 840 {
			t.Fatalf("first-position count for %q = %d, far from uniform", k, c)
		}
	}
}
