// Package admission implements the serve layer's overload controls: a
// per-client token-bucket rate limiter and a global concurrency gate
// with a bounded wait queue.
//
// The two compose into the standard admission pipeline: the rate
// limiter rejects a single client that is out of budget (429, its
// problem), the gate bounds how much admitted work runs at once and how
// much may wait (503 once the queue is full, everyone's problem). Both
// answer "how long until it is worth retrying", which the serve layer
// surfaces as Retry-After.
package admission

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// ErrQueueFull reports that the concurrency gate's wait queue is at
// capacity: the server is saturated beyond what queueing can absorb,
// and the request should be shed immediately rather than parked.
var ErrQueueFull = errors.New("admission: wait queue full")

// RateLimiter is a per-client token bucket: each client accrues rate
// tokens per second up to burst, and each admitted request spends one.
// Client state is bounded (maxClients); an idle client's bucket is
// reclaimed, which at worst re-grants it a full burst.
type RateLimiter struct {
	rate  float64 // tokens per second
	burst float64
	max   int

	mu      sync.Mutex
	clients map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter returns a limiter granting each client ratePerSec
// requests per second with the given burst. maxClients bounds tracked
// state; <= 0 defaults to 4096.
func NewRateLimiter(ratePerSec float64, burst int, maxClients int) *RateLimiter {
	if burst < 1 {
		burst = 1
	}
	if maxClients <= 0 {
		maxClients = 4096
	}
	return &RateLimiter{
		rate:    ratePerSec,
		burst:   float64(burst),
		max:     maxClients,
		clients: make(map[string]*bucket),
	}
}

// Allow spends one token from client's bucket if one is available,
// refilling by elapsed wall time first. When denied, retryAfter is the
// time until the next token accrues — the Retry-After the caller should
// surface.
func (l *RateLimiter) Allow(client string, now time.Time) (ok bool, retryAfter time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.clients[client]
	if b == nil {
		if len(l.clients) >= l.max {
			l.evictLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.clients[client] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(l.burst, b.tokens+dt*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if l.rate <= 0 {
		return false, time.Second // no refill configured; arbitrary floor
	}
	need := (1 - b.tokens) / l.rate
	return false, time.Duration(math.Ceil(need * float64(time.Second)))
}

// evictLocked reclaims idle buckets (fully refilled at now, so
// dropping them changes nothing) and, if every client is active, the
// oldest-touched bucket — bounded memory beats perfect fairness for
// one client out of thousands.
func (l *RateLimiter) evictLocked(now time.Time) {
	var oldestKey string
	var oldest time.Time
	for k, b := range l.clients {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.clients, k)
			continue
		}
		if oldestKey == "" || b.last.Before(oldest) {
			oldestKey, oldest = k, b.last
		}
	}
	if len(l.clients) >= l.max && oldestKey != "" {
		delete(l.clients, oldestKey)
	}
}

// Clients reports the number of tracked client buckets (tests and
// stats).
func (l *RateLimiter) Clients() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.clients)
}

// Gate bounds concurrent admitted work and how many requests may wait
// for a slot. Zero-cost when a slot is free; a full queue fails fast
// with ErrQueueFull.
type Gate struct {
	sem    chan struct{}
	maxQ   int64
	queued atomic.Int64
}

// NewGate returns a gate admitting maxConcurrent requests at once with
// at most maxQueue waiting. maxConcurrent <= 0 defaults to 64; maxQueue
// < 0 defaults to maxConcurrent (0 means never wait).
func NewGate(maxConcurrent, maxQueue int) *Gate {
	if maxConcurrent <= 0 {
		maxConcurrent = 64
	}
	if maxQueue < 0 {
		maxQueue = maxConcurrent
	}
	return &Gate{sem: make(chan struct{}, maxConcurrent), maxQ: int64(maxQueue)}
}

// Enter claims a slot, waiting in the bounded queue if none is free.
// The returned release func MUST be called exactly once when the work
// completes. Enter fails with ErrQueueFull when the queue is at
// capacity and with ctx.Err() when the caller's deadline expires while
// waiting.
func (g *Gate) Enter(ctx context.Context) (release func(), err error) {
	select {
	case g.sem <- struct{}{}:
		return g.release, nil
	default:
	}
	if g.queued.Add(1) > g.maxQ {
		g.queued.Add(-1)
		return nil, ErrQueueFull
	}
	defer g.queued.Add(-1)
	select {
	case g.sem <- struct{}{}:
		return g.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (g *Gate) release() { <-g.sem }

// Active reports requests currently holding a slot.
func (g *Gate) Active() int { return len(g.sem) }

// QueueDepth reports requests currently waiting for a slot.
func (g *Gate) QueueDepth() int { return int(g.queued.Load()) }
