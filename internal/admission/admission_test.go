package admission

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestRateLimiterBurstThenRefill(t *testing.T) {
	l := NewRateLimiter(10, 3, 0) // 10 tokens/s, burst 3
	now := time.Unix(1000, 0)
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("c", now); !ok {
			t.Fatalf("request %d within burst denied", i)
		}
	}
	ok, retry := l.Allow("c", now)
	if ok {
		t.Fatal("request past burst admitted")
	}
	if retry <= 0 || retry > 200*time.Millisecond {
		t.Fatalf("retryAfter = %v, want ~100ms", retry)
	}
	// After the advertised wait, exactly one token has accrued.
	now = now.Add(retry)
	if ok, _ := l.Allow("c", now); !ok {
		t.Fatal("request after advertised Retry-After denied")
	}
	if ok, _ := l.Allow("c", now); ok {
		t.Fatal("second request after one refill admitted")
	}
}

func TestRateLimiterPerClientIsolation(t *testing.T) {
	l := NewRateLimiter(1, 1, 0)
	now := time.Unix(1000, 0)
	if ok, _ := l.Allow("a", now); !ok {
		t.Fatal("a's first request denied")
	}
	if ok, _ := l.Allow("a", now); ok {
		t.Fatal("a's second request admitted")
	}
	if ok, _ := l.Allow("b", now); !ok {
		t.Fatal("b punished for a's saturation")
	}
}

func TestRateLimiterBoundedClients(t *testing.T) {
	l := NewRateLimiter(1, 1, 4)
	now := time.Unix(1000, 0)
	for i := 0; i < 100; i++ {
		l.Allow(string(rune('a'+i%26))+string(rune('0'+i/26)), now)
		now = now.Add(time.Millisecond)
	}
	if n := l.Clients(); n > 4 {
		t.Fatalf("tracking %d clients, bound is 4", n)
	}
}

func TestGateConcurrencyCap(t *testing.T) {
	g := NewGate(2, 0) // 2 slots, no queue
	r1, err := g.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Enter(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third Enter with full gate and zero queue: want ErrQueueFull, got %v", err)
	}
	if g.Active() != 2 {
		t.Fatalf("Active = %d, want 2", g.Active())
	}
	r1()
	r3, err := g.Enter(context.Background())
	if err != nil {
		t.Fatalf("Enter after release: %v", err)
	}
	r2()
	r3()
	if g.Active() != 0 {
		t.Fatalf("Active = %d after all releases, want 0", g.Active())
	}
}

func TestGateQueueWaitsAndDrains(t *testing.T) {
	g := NewGate(1, 8)
	r1, err := g.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	const waiters = 5
	var wg sync.WaitGroup
	admitted := make(chan func(), waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := g.Enter(context.Background())
			if err != nil {
				t.Errorf("queued Enter: %v", err)
				return
			}
			admitted <- r
		}()
	}
	// Wait until everyone is parked in the queue.
	deadline := time.Now().Add(2 * time.Second)
	for g.QueueDepth() < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("QueueDepth = %d, want %d", g.QueueDepth(), waiters)
		}
		time.Sleep(time.Millisecond)
	}
	r1()
	for i := 0; i < waiters; i++ {
		(<-admitted)() // each admission releases, unblocking the next
	}
	wg.Wait()
	if g.QueueDepth() != 0 || g.Active() != 0 {
		t.Fatalf("queue=%d active=%d after drain, want 0/0", g.QueueDepth(), g.Active())
	}
}

func TestGateCtxCancelWhileQueued(t *testing.T) {
	g := NewGate(1, 8)
	r1, err := g.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer r1()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := g.Enter(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued Enter past deadline: want DeadlineExceeded, got %v", err)
	}
	if g.QueueDepth() != 0 {
		t.Fatalf("QueueDepth = %d after abandoned wait, want 0", g.QueueDepth())
	}
}

func TestGateRace(t *testing.T) {
	g := NewGate(4, 16)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			r, err := g.Enter(ctx)
			if err != nil {
				return // shed under load is fine; leaks are not
			}
			if g.Active() > 4 {
				t.Errorf("Active = %d, cap is 4", g.Active())
			}
			r()
		}()
	}
	wg.Wait()
	if g.Active() != 0 || g.QueueDepth() != 0 {
		t.Fatalf("active=%d queue=%d after drain", g.Active(), g.QueueDepth())
	}
}
