package delta

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"rankedaccess/internal/values"
)

// TestAppendRewindAfterPartialWrite: a partial frame left behind by a
// failed append must not strand later appends behind it — replay would
// stop at the garbage and silently drop every acknowledged batch after
// it. rewind (Append's error path) restores the file position to the
// end of the last good frame.
func TestAppendRewindAfterPartialWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	b1 := Batch{Seq: 1, Muts: []Mutation{{Op: OpInsert, Rel: "R", Arity: 2, Rows: []values.Value{1, 2}}}}
	if err := w.Append(b1); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn half of a failed append: raw bytes past the last
	// good frame, as if the process had errored mid-write.
	if _, err := w.f.Write([]byte("torn-frame-garbage")); err != nil {
		t.Fatal(err)
	}
	w.rewind()
	if w.broken {
		t.Fatal("rewind on a healthy file marked the WAL broken")
	}
	b2 := Batch{Seq: 2, Muts: []Mutation{{Op: OpDelete, Rel: "R", Arity: 2, Rows: []values.Value{1, 2}}}}
	if err := w.Append(b2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	_, replayed, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := []Batch{b1, b2}; !reflect.DeepEqual(replayed, want) {
		t.Fatalf("replay after rewind:\n got %+v\nwant %+v", replayed, want)
	}
}

// TestAppendBrokenFailsFast: when the rollback itself fails, the WAL
// must refuse further appends instead of writing after unrecovered
// garbage.
func TestAppendBrokenFailsFast(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.f.Close()
	// Swap in a read-only descriptor: the append's write fails, and so
	// does the rewind's truncate.
	good := w.f
	ro, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	w.f = ro
	b := Batch{Seq: 1, Muts: []Mutation{{Op: OpInsert, Rel: "R", Arity: 1, Rows: []values.Value{7}}}}
	if err := w.Append(b); err == nil {
		t.Fatal("append through a read-only descriptor succeeded")
	}
	if !w.broken {
		t.Fatal("failed rollback did not mark the WAL broken")
	}
	w.f = good
	if err := w.Append(b); !errors.Is(err, ErrWALBroken) {
		t.Fatalf("append on a broken WAL: err = %v, want ErrWALBroken", err)
	}
}

// TestWALReset: Reset empties the log and moves the sequence floor, so
// post-restore appends pass the regression check while pre-restore
// frames are gone from replay.
func TestWALReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range testBatches() {
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Reset(42); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Batch{Seq: 42}); err == nil {
		t.Fatal("append at the reset floor passed the seq-regression check")
	}
	b43 := Batch{Seq: 43, Muts: []Mutation{{Op: OpInsert, Rel: "V", Arity: 1, Rows: []values.Value{1}}}}
	if err := w.Append(b43); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	_, replayed, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := []Batch{b43}; !reflect.DeepEqual(replayed, want) {
		t.Fatalf("replay after reset:\n got %+v\nwant %+v", replayed, want)
	}
}

// TestDiscardFrom: keeping a prefix of the replayed frames truncates
// the file so a reopen sees exactly that prefix, and appends continue
// cleanly after it.
func TestDiscardFrom(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	all := testBatches()
	for _, b := range all {
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, replayed, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(all) {
		t.Fatalf("replayed %d frames, want %d", len(replayed), len(all))
	}
	if err := w2.DiscardFrom(1, replayed[0].Seq); err != nil {
		t.Fatal(err)
	}
	b9 := Batch{Seq: 9, Muts: []Mutation{{Op: OpReset, Rel: "R"}}}
	if err := w2.Append(b9); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	_, replayed, err = OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := []Batch{all[0], b9}; !reflect.DeepEqual(replayed, want) {
		t.Fatalf("replay after discard:\n got %+v\nwant %+v", replayed, want)
	}
}
