package delta

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"rankedaccess/internal/faultfs"
)

// These tests drive the WAL through injected filesystem faults (see
// internal/faultfs) and assert its two recovery invariants: a failed
// append rolls the file back so later appends stay replayable, and
// when rollback itself fails the WAL fails fast as broken while a
// restart salvages every acknowledged frame.

func openChaosWAL(t *testing.T) (*faultfs.Injector, *WAL, string) {
	t.Helper()
	inj := faultfs.NewInjector(faultfs.OS())
	path := filepath.Join(t.TempDir(), "wal.log")
	w, replayed, err := OpenWALFS(inj, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 0 {
		t.Fatalf("fresh WAL replayed %d batches", len(replayed))
	}
	return inj, w, path
}

func TestChaosAppendWriteFailRollsBackThenRecovers(t *testing.T) {
	inj, w, path := openChaosWAL(t)
	defer w.Close()
	batches := testBatches()
	if err := w.Append(batches[0]); err != nil {
		t.Fatal(err)
	}
	// Fail the next data write (the frame header). Rollback itself uses
	// Truncate+Seek, which stay healthy, so the WAL must recover.
	inj.Inject(faultfs.Fault{Op: faultfs.OpWrite, Nth: 1, Mode: faultfs.ModeFail})
	if err := w.Append(batches[1]); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("append under write fault: err = %v, want injected", err)
	}
	if w.Broken() {
		t.Fatal("WAL broken although rollback succeeded")
	}
	// The fault is one-shot: the retry must land, and replay must see
	// exactly the two acknowledged frames.
	if err := w.Append(batches[1]); err != nil {
		t.Fatalf("retry after one-shot fault: %v", err)
	}
	w.Close()
	_, replayed, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, batches[:2]) {
		t.Fatalf("replay after rollback:\n got %v\nwant %v", replayed, batches[:2])
	}
}

func TestChaosSyncFailDiscardsUnacknowledgedFrame(t *testing.T) {
	inj, w, path := openChaosWAL(t)
	batches := testBatches()
	if err := w.Append(batches[0]); err != nil {
		t.Fatal(err)
	}
	// ModeFailAfter: the sync happens (bytes are durable!) but an error
	// is reported. The caller never got an acknowledgement, so the
	// frame must be rolled back — "maybe durable" must read as "not
	// written" after recovery, or replay would resurrect a write the
	// client was told failed.
	inj.Inject(faultfs.Fault{Op: faultfs.OpSync, Nth: 1, Mode: faultfs.ModeFailAfter})
	if err := w.Append(batches[1]); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("append under sync fault: err = %v, want injected", err)
	}
	w.Close()
	_, replayed, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, batches[:1]) {
		t.Fatalf("unacknowledged frame resurfaced: got %v, want %v", replayed, batches[:1])
	}
}

func TestChaosBrokenWALFailsFastAndRestartSalvages(t *testing.T) {
	inj, w, path := openChaosWAL(t)
	batches := testBatches()
	if err := w.Append(batches[0]); err != nil {
		t.Fatal(err)
	}
	// A short write strands half the payload on disk, and the rollback
	// truncate fails too: the file now ends in a torn frame the live
	// WAL cannot clear. It must mark itself broken and refuse appends
	// rather than write frames replay would never reach.
	inj.Inject(faultfs.Fault{Op: faultfs.OpWrite, Nth: 2, Mode: faultfs.ModeShortWrite})
	inj.Inject(faultfs.Fault{Op: faultfs.OpTruncate, Nth: 1, Mode: faultfs.ModeFail})
	if err := w.Append(batches[1]); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("append under short write: err = %v, want injected", err)
	}
	if !w.Broken() {
		t.Fatal("WAL not broken after failed rollback")
	}
	if err := w.Append(batches[2]); !errors.Is(err, ErrWALBroken) {
		t.Fatalf("append on broken WAL: err = %v, want ErrWALBroken", err)
	}
	w.Close()

	// The file genuinely ends in a torn frame.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() <= int64(len(walMagic)) {
		t.Fatal("torn tail never landed; the test lost its premise")
	}

	// Restart: replay stops at the torn frame, truncates it away, and
	// the WAL serves appends again — recovery needs a reopen, nothing
	// more.
	w2, replayed, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if !reflect.DeepEqual(replayed, batches[:1]) {
		t.Fatalf("salvage kept wrong frames: got %v, want %v", replayed, batches[:1])
	}
	if w2.Broken() {
		t.Fatal("reopened WAL still broken")
	}
	if err := w2.Append(batches[1]); err != nil {
		t.Fatalf("append after salvage: %v", err)
	}
}
