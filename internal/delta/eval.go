package delta

import (
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/order"
	"rankedaccess/internal/tupleidx"
	"rankedaccess/internal/values"
)

// This file computes the answer-level difference a catch-up span of
// batches induces on one query: which answers of Q appeared and which
// disappeared between a structure's build version and the current
// instance. The key observation is that any answer in the symmetric
// difference has a witness (a satisfying assignment) that uses at least
// one changed tuple — an appeared answer has a witness through an
// inserted tuple against the current instance, a disappeared answer had
// one through a deleted tuple against the old instance, and the old
// instance is exactly the current one with the deleted rows put back
// (inserted rows are a subset of the current relations already). So the
// candidate set is enumerable without reconstructing the old instance:
// join each atom restricted to its changed rows against the other atoms
// over the union instance (current relations plus deleted rows,
// iterated as two segments without copying anything).

// Span summarizes a catch-up span for one query: Changed[rel] holds
// every row inserted or deleted in the span (candidate witnesses must
// use at least one), Deleted[rel] holds the deleted rows (the part of
// the union instance the current relations lack).
type Span struct {
	Changed map[string]*database.Relation
	Deleted map[string]*database.Relation
}

// CollectSpan folds the batches' mutations of the given relations into
// a Span. ok is false when the span contains an opaque reset of one of
// the relations: the row-level delta is then unknown and the caller
// must rebuild.
func CollectSpan(batches []Batch, rels map[string]bool) (Span, bool) {
	sp := Span{
		Changed: make(map[string]*database.Relation),
		Deleted: make(map[string]*database.Relation),
	}
	add := func(m map[string]*database.Relation, name string, arity int, rows []values.Value) {
		r := m[name]
		if r == nil {
			r = database.NewRelation(arity)
			m[name] = r
		}
		if r.Arity() != arity {
			return // arity drift is impossible for validated batches
		}
		for i := 0; i+arity <= len(rows); i += arity {
			r.Append(rows[i : i+arity]...)
		}
	}
	for bi := range batches {
		for mi := range batches[bi].Muts {
			m := &batches[bi].Muts[mi]
			if !rels[m.Rel] {
				continue
			}
			switch m.Op {
			case OpReset:
				return Span{}, false
			case OpInsert:
				add(sp.Changed, m.Rel, m.Arity, m.Rows)
			case OpDelete:
				add(sp.Changed, m.Rel, m.Arity, m.Rows)
				add(sp.Deleted, m.Rel, m.Arity, m.Rows)
			}
		}
	}
	return sp, true
}

// Size returns the number of changed rows in the span — the engine's
// cheap a-priori bound on the catch-up work.
func (sp *Span) Size() int {
	n := 0
	for _, r := range sp.Changed {
		if r != nil {
			n += r.Len()
		}
	}
	return n
}

// Diff computes the answer-level edit of q induced by the span: adds
// are answers of Q over the current instance that the structure's epoch
// (as reported by member) lacks, dels are epoch answers no longer
// supported by the current instance. member must answer membership in
// the epoch's merged answer set; answers carry only head variables
// (existential positions zero), matching the engine's set semantics.
func Diff(q *cq.Query, cur *database.Instance, sp Span, member func(order.Answer) bool) (adds, dels []order.Answer) {
	if len(q.Head) == 0 || len(q.Atoms) == 0 {
		return nil, nil
	}
	headCols := make([]int, len(q.Head))
	for i, v := range q.Head {
		headCols[i] = int(v)
	}
	cands := tupleidx.New(len(q.Head), 16)
	ctx := &evalCtx{
		q:     q,
		asg:   make(order.Answer, q.NumVars()),
		bound: make([]bool, q.NumVars()),
		segs:  make([][]*database.Relation, len(q.Atoms)),
		undo:  make([][]cq.VarID, len(q.Atoms)),
	}
	for i := range q.Atoms {
		ch := sp.Changed[q.Atoms[i].Rel]
		if ch == nil || ch.Len() == 0 {
			continue
		}
		for j := range q.Atoms {
			rel := q.Atoms[j].Rel
			if j == i {
				ctx.segs[j] = []*database.Relation{ch}
			} else {
				ctx.segs[j] = []*database.Relation{cur.Relation(rel), sp.Deleted[rel]}
			}
		}
		ctx.order = atomOrder(q, i, nil)
		ctx.run(0, func() bool {
			cands.InsertCols(ctx.asg, headCols)
			return true
		})
	}
	for id := 0; id < cands.Len(); id++ {
		key := cands.Key(id)
		a := make(order.Answer, q.NumVars())
		for i, v := range q.Head {
			a[v] = key[i]
		}
		has := HasAnswer(q, cur, a)
		switch m := member(a); {
		case has && !m:
			adds = append(adds, a)
		case !has && m:
			dels = append(dels, a)
		}
	}
	return adds, dels
}

// HasAnswer reports whether the head projection carried by a (every
// head variable assigned, others ignored) is an answer of q over in: a
// satisfiability probe with the head bound, stopping at the first
// witness.
func HasAnswer(q *cq.Query, in *database.Instance, a order.Answer) bool {
	ctx := &evalCtx{
		q:     q,
		asg:   make(order.Answer, q.NumVars()),
		bound: make([]bool, q.NumVars()),
		segs:  make([][]*database.Relation, len(q.Atoms)),
		undo:  make([][]cq.VarID, len(q.Atoms)),
	}
	for _, v := range q.Head {
		ctx.asg[v] = a[v]
		ctx.bound[v] = true
	}
	for j := range q.Atoms {
		ctx.segs[j] = []*database.Relation{in.Relation(q.Atoms[j].Rel)}
	}
	ctx.order = atomOrder(q, -1, q.Head)
	found := false
	ctx.run(0, func() bool {
		found = true
		return false
	})
	return found
}

// evalCtx is one backtracking join's state: a partial assignment over
// the query's variables plus per-atom row segments to scan.
type evalCtx struct {
	q     *cq.Query
	asg   order.Answer
	bound []bool
	segs  [][]*database.Relation
	order []int
	undo  [][]cq.VarID // per-depth scratch of variables bound at that depth
}

// run enumerates all assignments extending the current one through the
// atoms of c.order[depth:], calling yield at each complete one; yield
// returns false to stop. run reports whether enumeration ran to the end.
func (c *evalCtx) run(depth int, yield func() bool) bool {
	if depth == len(c.order) {
		return yield()
	}
	ai := c.order[depth]
	vars := c.q.Atoms[ai].Vars
	for _, r := range c.segs[ai] {
		if r == nil || r.Arity() != len(vars) {
			continue
		}
		n := r.Len()
	rows:
		for t := 0; t < n; t++ {
			row := r.Tuple(t)
			undo := c.undo[depth][:0]
			for k, v := range vars {
				if c.bound[v] {
					if c.asg[v] != row[k] {
						for _, u := range undo {
							c.bound[u] = false
						}
						continue rows
					}
					continue
				}
				c.asg[v] = row[k]
				c.bound[v] = true
				undo = append(undo, v)
			}
			c.undo[depth] = undo
			ok := c.run(depth+1, yield)
			for _, u := range undo {
				c.bound[u] = false
			}
			if !ok {
				return false
			}
		}
	}
	return true
}

// atomOrder picks an evaluation order: first (when ≥ 0) leads, then
// atoms are added greedily by how many of their variables are already
// bound (pre is the set of variables bound before evaluation starts),
// so the scan narrows as early as possible.
func atomOrder(q *cq.Query, first int, pre []cq.VarID) []int {
	n := len(q.Atoms)
	out := make([]int, 0, n)
	used := make([]bool, n)
	bound := make(map[cq.VarID]bool, q.NumVars())
	for _, v := range pre {
		bound[v] = true
	}
	take := func(i int) {
		out = append(out, i)
		used[i] = true
		for _, v := range q.Atoms[i].Vars {
			bound[v] = true
		}
	}
	if first >= 0 {
		take(first)
	}
	for len(out) < n {
		best, bestScore := -1, -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			score := 0
			for _, v := range q.Atoms[i].Vars {
				if bound[v] {
					score++
				}
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		take(best)
	}
	return out
}
