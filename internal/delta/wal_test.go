package delta

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"rankedaccess/internal/values"
)

func testBatches() []Batch {
	return []Batch{
		{Seq: 1, Muts: []Mutation{
			{Op: OpInsert, Rel: "R", Arity: 2, Rows: []values.Value{1, 2, 3, 4}},
		}},
		{Seq: 2, Muts: []Mutation{
			{Op: OpDelete, Rel: "S", Arity: 3, Rows: []values.Value{5, 6, 7}},
			{Op: OpReset, Rel: "T", Arity: 1},
		}},
		{Seq: 5, Muts: []Mutation{
			{Op: OpInsert, Rel: "U", Arity: 1, Rows: []values.Value{-9}},
		}},
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, replayed, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 0 {
		t.Fatalf("fresh WAL replayed %d batches", len(replayed))
	}
	want := testBatches()
	for _, b := range want {
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, replayed, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if !reflect.DeepEqual(replayed, want) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", replayed, want)
	}
	// Appends after reopen must continue the sequence.
	if err := w2.Append(Batch{Seq: 6, Muts: []Mutation{{Op: OpReset, Rel: "R"}}}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(Batch{Seq: 6}); err == nil {
		t.Fatal("non-monotonic seq accepted")
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	want := testBatches()
	for _, b := range want {
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	// Tear the last frame: chop a few bytes off the end.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	w2, replayed, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if !reflect.DeepEqual(replayed, want[:2]) {
		t.Fatalf("torn-tail replay: got %d batches, want 2", len(replayed))
	}
	// The torn frame must have been truncated away so new appends work.
	if err := w2.Append(Batch{Seq: 9, Muts: []Mutation{{Op: OpReset, Rel: "R"}}}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, replayed, err = OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 3 || replayed[2].Seq != 9 {
		t.Fatalf("post-repair replay: %+v", replayed)
	}
}

func TestWALCorruptPayloadStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	want := testBatches()
	for _, b := range want {
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte near the end: CRC of the final frame fails, replay
	// keeps the prefix.
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, replayed, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w2.Close()
	if !reflect.DeepEqual(replayed, want[:2]) {
		t.Fatalf("corrupt-tail replay: got %d batches, want 2", len(replayed))
	}
}

func TestWALTruncateAll(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range testBatches() {
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.TruncateAll(); err != nil {
		t.Fatal(err)
	}
	// last persists across truncation so the seq stays monotonic.
	if err := w.Append(Batch{Seq: 3}); err == nil {
		t.Fatal("seq regressed after TruncateAll")
	}
	if err := w.Append(Batch{Seq: 6, Muts: []Mutation{{Op: OpReset, Rel: "R"}}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, replayed, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 1 || replayed[0].Seq != 6 {
		t.Fatalf("replay after truncate: %+v", replayed)
	}
}

func TestWALBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, []byte("NOTAWAL0junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(path); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// FuzzWALReplay feeds arbitrary bytes after a valid magic header into
// the replay path: it must never panic, and whatever prefix it accepts
// must survive a rewrite/reopen round trip unchanged (replayed state ==
// live state).
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	var buf bytes.Buffer
	for _, b := range testBatches() {
		pay := encodeBatch(nil, b)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(pay)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(pay, crcTable))
		buf.Write(hdr[:])
		buf.Write(pay)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()-5])
	f.Add([]byte{0, 0, 0, 4, 0, 0, 0, 0, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, body []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "wal.log")
		if err := os.WriteFile(path, append([]byte(walMagic), body...), 0o644); err != nil {
			t.Fatal(err)
		}
		w, replayed, err := OpenWAL(path)
		if err != nil {
			return // structurally rejected is fine; panics are not
		}
		w.Close()
		// Re-write the accepted batches into a fresh WAL; replaying that
		// must reproduce them exactly.
		path2 := filepath.Join(dir, "wal2.log")
		w2, _, err := OpenWAL(path2)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range replayed {
			if err := w2.Append(b); err != nil {
				// Replay enforces the same seq ordering Append does, so a
				// replayed batch must always re-append cleanly.
				t.Fatalf("re-append of replayed batch failed: %v", err)
			}
		}
		w2.Close()
		_, replayed2, err := OpenWAL(path2)
		if err != nil {
			t.Fatal(err)
		}
		if len(replayed) != len(replayed2) {
			t.Fatalf("round trip lost batches: %d != %d", len(replayed), len(replayed2))
		}
		for i := range replayed {
			if !reflect.DeepEqual(replayed[i], replayed2[i]) {
				t.Fatalf("batch %d changed across round trip", i)
			}
		}
	})
}
