package delta

import (
	"math/rand"
	"testing"

	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/order"
	"rankedaccess/internal/values"
)

func TestLogSinceAndTruncation(t *testing.T) {
	l := NewLog(4)
	for seq := uint64(1); seq <= 3; seq++ {
		l.Append(Batch{Seq: seq})
	}
	if got, ok := l.Since(0); !ok || len(got) != 3 {
		t.Fatalf("Since(0) = %d batches, ok=%v", len(got), ok)
	}
	if got, ok := l.Since(2); !ok || len(got) != 1 || got[0].Seq != 3 {
		t.Fatalf("Since(2) wrong: %v ok=%v", got, ok)
	}
	if got, ok := l.Since(3); !ok || len(got) != 0 {
		t.Fatalf("Since(3) = %d batches, ok=%v", len(got), ok)
	}
	for seq := uint64(4); seq <= 8; seq++ {
		l.Append(Batch{Seq: seq})
	}
	// Limit 4: batches 1-4 dropped, base = 4.
	if _, ok := l.Since(3); ok {
		t.Fatal("Since(3) should report truncation")
	}
	if got, ok := l.Since(4); !ok || len(got) != 4 {
		t.Fatalf("Since(4) = %d batches, ok=%v", len(got), ok)
	}
	if l.Last() != 8 {
		t.Fatalf("Last = %d", l.Last())
	}
	l.Reset(20)
	if _, ok := l.Since(8); ok {
		t.Fatal("Since after Reset should report truncation")
	}
	if got, ok := l.Since(20); !ok || len(got) != 0 {
		t.Fatalf("Since(reset floor) = %d batches, ok=%v", len(got), ok)
	}
}

// answerKey flattens a head projection for set comparison.
func answerKey(q *cq.Query, a order.Answer) [4]values.Value {
	var k [4]values.Value
	for i, v := range q.Head {
		k[i] = a[v]
	}
	return k
}

func answerSet(q *cq.Query, as []order.Answer) map[[4]values.Value]bool {
	out := make(map[[4]values.Value]bool, len(as))
	for _, a := range as {
		out[answerKey(q, a)] = true
	}
	return out
}

// naiveAnswers is an independent evaluation of Q(I) under set
// semantics, used as the oracle for Diff.
func naiveAnswers(q *cq.Query, in *database.Instance) []order.Answer {
	var out []order.Answer
	seen := map[[4]values.Value]bool{}
	var rec func(ai int, asg order.Answer, bound []bool)
	rec = func(ai int, asg order.Answer, bound []bool) {
		if ai == len(q.Atoms) {
			k := answerKey(q, asg)
			if !seen[k] {
				seen[k] = true
				a := make(order.Answer, len(asg))
				for _, v := range q.Head {
					a[v] = asg[v]
				}
				out = append(out, a)
			}
			return
		}
		r := in.Relation(q.Atoms[ai].Rel)
		if r == nil {
			return
		}
		vars := q.Atoms[ai].Vars
		if r.Arity() != len(vars) {
			return
		}
		for i := 0; i < r.Len(); i++ {
			row := r.Tuple(i)
			var undo []cq.VarID
			ok := true
			for j, v := range vars {
				if bound[v] {
					if asg[v] != row[j] {
						ok = false
						break
					}
					continue
				}
				asg[v] = row[j]
				bound[v] = true
				undo = append(undo, v)
			}
			if ok {
				rec(ai+1, asg, bound)
			}
			for _, v := range undo {
				bound[v] = false
			}
		}
	}
	rec(0, make(order.Answer, q.NumVars()), make([]bool, q.NumVars()))
	return out
}

func TestDiffMatchesNaiveRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)")
	for trial := 0; trial < 30; trial++ {
		old := database.NewInstance()
		for i := 0; i < 40; i++ {
			old.AddRow("R", values.Value(rng.Intn(8)), values.Value(rng.Intn(8)))
			old.AddRow("S", values.Value(rng.Intn(8)), values.Value(rng.Intn(8)))
		}
		cur := old.Clone()
		// Random batch span: inserts and deletes over both relations.
		var muts []Mutation
		for _, rel := range []string{"R", "S"} {
			var ins, del []values.Value
			for i := 0; i < rng.Intn(6); i++ {
				ins = append(ins, values.Value(rng.Intn(8)), values.Value(rng.Intn(8)))
			}
			r := cur.Relation(rel)
			for i := 0; i < rng.Intn(4); i++ {
				row := r.Tuple(rng.Intn(r.Len()))
				del = append(del, row[0], row[1])
			}
			if len(ins) > 0 {
				muts = append(muts, Mutation{Op: OpInsert, Rel: rel, Arity: 2, Rows: ins})
			}
			if len(del) > 0 {
				muts = append(muts, Mutation{Op: OpDelete, Rel: rel, Arity: 2, Rows: del})
			}
		}
		// Apply to cur the way the engine does.
		for _, m := range muts {
			for i := 0; i < m.NumRows(); i++ {
				row := m.Row(i)
				if m.Op == OpInsert {
					cur.AddRow(m.Rel, row...)
				} else {
					cur.DeleteRow(m.Rel, row...)
				}
			}
		}
		oldAns := naiveAnswers(q, old)
		curAns := naiveAnswers(q, cur)
		oldSet := answerSet(q, oldAns)
		curSet := answerSet(q, curAns)

		rels := map[string]bool{"R": true, "S": true}
		sp, ok := CollectSpan([]Batch{{Seq: 1, Muts: muts}}, rels)
		if !ok {
			t.Fatal("CollectSpan refused a reset-free span")
		}
		member := func(a order.Answer) bool { return oldSet[answerKey(q, a)] }
		adds, dels := Diff(q, cur, sp, member)

		// Applying the diff to the old answer set must give the new one.
		got := make(map[[4]values.Value]bool, len(oldSet))
		for k := range oldSet {
			got[k] = true
		}
		for _, d := range dels {
			k := answerKey(q, d)
			if !got[k] {
				t.Fatalf("trial %d: del %v not in old answers", trial, d)
			}
			delete(got, k)
		}
		for _, a := range adds {
			k := answerKey(q, a)
			if got[k] {
				t.Fatalf("trial %d: add %v already present", trial, a)
			}
			got[k] = true
		}
		if len(got) != len(curSet) {
			t.Fatalf("trial %d: merged %d answers, want %d", trial, len(got), len(curSet))
		}
		for k := range curSet {
			if !got[k] {
				t.Fatalf("trial %d: merged set missing %v", trial, k)
			}
		}
	}
}

func TestCollectSpanReset(t *testing.T) {
	batches := []Batch{{Seq: 2, Muts: []Mutation{{Op: OpReset, Rel: "R"}}}}
	if _, ok := CollectSpan(batches, map[string]bool{"R": true}); ok {
		t.Fatal("a reset of a referenced relation must force a rebuild")
	}
	if _, ok := CollectSpan(batches, map[string]bool{"S": true}); !ok {
		t.Fatal("a reset of an unrelated relation must not")
	}
}

func TestHasAnswer(t *testing.T) {
	q := cq.MustParse("Q(x, z) :- R(x, y), S(y, z)")
	in := database.NewInstance()
	in.AddRow("R", 1, 2)
	in.AddRow("S", 2, 3)
	a := make(order.Answer, q.NumVars())
	x, _ := q.VarByName("x")
	z, _ := q.VarByName("z")
	a[x], a[z] = 1, 3
	if !HasAnswer(q, in, a) {
		t.Fatal("(1, 3) should be an answer")
	}
	a[z] = 4
	if HasAnswer(q, in, a) {
		t.Fatal("(1, 4) should not be an answer")
	}
}
