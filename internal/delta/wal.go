package delta

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"rankedaccess/internal/faultfs"
	"rankedaccess/internal/values"
)

// On-disk format (version RAWAL001, little-endian throughout):
//
//	header   8 bytes  magic "RAWAL001"
//	frame*   u32 payload length | u32 CRC-32C of payload | payload
//
// One frame holds one Batch:
//
//	u64 seq
//	u32 mutation count
//	per mutation: u8 op | u32 rel length | rel bytes |
//	              u32 arity | u32 value count | value count × i64
//
// A frame whose length field, CRC, or payload structure is broken ends
// replay: everything before it is the replayed state, everything from
// its offset on is a torn tail from an interrupted append and is
// truncated away before the next write. Bumping the format means
// bumping the magic (RAWAL002, ...), mirroring the snapshot policy:
// readers reject unknown magics instead of misparsing, and a version
// bump is required for any change to the frame or payload layout.

// walMagic identifies the current WAL format version.
const walMagic = "RAWAL001"

// MaxFrame bounds one frame's payload; larger length fields are treated
// as corruption (a torn or garbage tail), not an allocation request.
const MaxFrame = 1 << 28

// ErrWALMagic reports a WAL file whose header is not a known version.
var ErrWALMagic = errors.New("delta: not a WAL file (bad magic)")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrWALBroken reports a WAL whose file position could not be restored
// after a failed append: the file may end in a torn frame that cannot
// be cleared, so further appends would land after garbage and be lost
// at replay. The engine keeps serving reads; writes fail fast.
var ErrWALBroken = errors.New("delta: WAL broken (unrecovered partial append)")

// WAL is the durable write-ahead log: an append-only file of CRC-framed
// batches. Appends are serialized by the engine's write lock; the WAL
// itself is not goroutine-safe.
type WAL struct {
	f      faultfs.File
	buf    []byte
	last   uint64  // highest appended/replayed seq
	end    int64   // offset just past the last good frame
	frames []int64 // per replayed frame: offset just past it (DiscardFrom)
	broken bool    // a failed append could not be rolled back
}

// OpenWAL opens (creating if absent) the WAL at path, replays every
// intact frame, truncates a torn tail, and returns the replayed batches
// oldest first. The returned WAL is positioned for appending.
func OpenWAL(path string) (*WAL, []Batch, error) {
	return OpenWALFS(faultfs.OS(), path)
}

// OpenWALFS is OpenWAL over an explicit filesystem, the chaos-test seam
// (see internal/faultfs).
func OpenWALFS(fsys faultfs.FS, path string) (*WAL, []Batch, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	w := &WAL{f: f}
	batches, end, err := w.replay()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Drop a torn tail so the next frame starts cleanly after the last
	// good one.
	if st, err := f.Stat(); err == nil && st.Size() > end {
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	w.end = end
	return w, batches, nil
}

// replay reads the header (writing it into an empty file) and every
// intact frame, returning the batches and the offset of the first
// byte past the last good frame.
func (w *WAL) replay() ([]Batch, int64, error) {
	st, err := w.f.Stat()
	if err != nil {
		return nil, 0, err
	}
	if st.Size() == 0 {
		if _, err := w.f.Write([]byte(walMagic)); err != nil {
			return nil, 0, err
		}
		if err := w.f.Sync(); err != nil {
			return nil, 0, err
		}
		return nil, int64(len(walMagic)), nil
	}
	var magic [len(walMagic)]byte
	if _, err := io.ReadFull(w.f, magic[:]); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrWALMagic, err)
	}
	if string(magic[:]) != walMagic {
		return nil, 0, ErrWALMagic
	}
	var batches []Batch
	off := int64(len(walMagic))
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(w.f, hdr[:]); err != nil {
			break // clean EOF or torn length/CRC header
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > MaxFrame {
			break
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(w.f, payload); err != nil {
			break // torn payload
		}
		if crc32.Checksum(payload, crcTable) != sum {
			break
		}
		b, ok := decodeBatch(payload)
		if !ok {
			break
		}
		if b.Seq <= w.last && w.last != 0 {
			break // seq regression: garbage past the real tail
		}
		batches = append(batches, b)
		w.last = b.Seq
		off += 8 + int64(length)
		w.frames = append(w.frames, off)
	}
	return batches, off, nil
}

// Append encodes and writes one batch, then syncs, so an acknowledged
// write survives a crash. Seq must exceed every previously appended
// sequence. A failed or partial write is rolled back to the end of the
// last good frame before the error returns, so a later Append never
// lands after garbage that would end replay early; if the rollback
// itself fails, the WAL is marked broken and every further Append
// fails fast with ErrWALBroken.
func (w *WAL) Append(b Batch) error {
	if w.broken {
		return ErrWALBroken
	}
	if b.Seq <= w.last && w.last != 0 {
		return fmt.Errorf("delta: WAL append seq %d after %d", b.Seq, w.last)
	}
	payload := encodeBatch(w.buf[:0], b)
	w.buf = payload[:0]
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := w.f.Write(hdr[:]); err != nil {
		w.rewind()
		return err
	}
	if _, err := w.f.Write(payload); err != nil {
		w.rewind()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.rewind()
		return err
	}
	w.last = b.Seq
	w.end += 8 + int64(len(payload))
	return nil
}

// rewind restores the file to the end of the last good frame after a
// failed append, discarding whatever part of the new frame landed. On
// failure the WAL is marked broken: the file may end in bytes that
// cannot be distinguished from a torn tail, so appending after them
// would silently cut every later frame out of replay.
func (w *WAL) rewind() {
	if err := w.f.Truncate(w.end); err != nil {
		w.broken = true
		return
	}
	if _, err := w.f.Seek(w.end, io.SeekStart); err != nil {
		w.broken = true
	}
}

// TruncateAll drops every frame (the checkpoint that just persisted
// them holds the write path locked out, so no frame can be newer than
// the snapshot). The header stays; appends continue after it. The
// sequence floor is kept: the engine version only moves forward across
// a checkpoint.
func (w *WAL) TruncateAll() error {
	if err := w.f.Truncate(int64(len(walMagic))); err != nil {
		return err
	}
	if _, err := w.f.Seek(int64(len(walMagic)), io.SeekStart); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.end = int64(len(walMagic))
	w.frames = nil
	w.broken = false
	return nil
}

// Reset empties the WAL and declares seq its new sequence floor. Used
// for discontinuities replay cannot express (a live snapshot restore):
// the frames describe the pre-restore lineage and must not replay onto
// the restored state, and the floor must follow the restored version so
// the next append's seq passes the regression check.
func (w *WAL) Reset(seq uint64) error {
	if err := w.TruncateAll(); err != nil {
		return err
	}
	w.last = seq
	return nil
}

// DiscardFrom truncates the log so that only the first n replayed
// frames remain, treating everything from frame n on as corrupt — the
// same salvage OpenWAL applies to a torn tail, for poison that is only
// detectable above the framing layer (a batch that fails validation
// against the state it replays onto). Valid only on a freshly opened
// WAL, before any Append or truncation.
func (w *WAL) DiscardFrom(n int, lastSeq uint64) error {
	if n < 0 || n > len(w.frames) {
		return fmt.Errorf("delta: WAL discard from frame %d of %d", n, len(w.frames))
	}
	end := int64(len(walMagic))
	if n > 0 {
		end = w.frames[n-1]
	}
	if err := w.f.Truncate(end); err != nil {
		return err
	}
	if _, err := w.f.Seek(end, io.SeekStart); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.end = end
	w.frames = w.frames[:n]
	w.last = lastSeq
	return nil
}

// Broken reports whether a failed append could not be rolled back, so
// every further Append fails fast with ErrWALBroken. Health probes use
// it to flip readiness before a write has to hit the error.
func (w *WAL) Broken() bool { return w.broken }

// Close closes the underlying file.
func (w *WAL) Close() error { return w.f.Close() }

// encodeBatch appends the frame payload for b to dst.
func encodeBatch(dst []byte, b Batch) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, b.Seq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.Muts)))
	for i := range b.Muts {
		m := &b.Muts[i]
		dst = append(dst, byte(m.Op))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m.Rel)))
		dst = append(dst, m.Rel...)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(m.Arity))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m.Rows)))
		for _, v := range m.Rows {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
		}
	}
	return dst
}

// decodeBatch parses one frame payload; ok is false for any structural
// mismatch (the frame is then treated as torn). It never panics on
// arbitrary input.
func decodeBatch(p []byte) (Batch, bool) {
	var b Batch
	if len(p) < 12 {
		return b, false
	}
	b.Seq = binary.LittleEndian.Uint64(p[0:8])
	n := binary.LittleEndian.Uint32(p[8:12])
	p = p[12:]
	if uint64(n) > uint64(len(p)) { // each mutation needs ≥ 13 bytes; cheap sanity bound
		return b, false
	}
	b.Muts = make([]Mutation, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(p) < 5 {
			return b, false
		}
		var m Mutation
		m.Op = Op(p[0])
		relLen := binary.LittleEndian.Uint32(p[1:5])
		p = p[5:]
		if uint64(relLen) > uint64(len(p)) {
			return b, false
		}
		m.Rel = string(p[:relLen])
		p = p[relLen:]
		if len(p) < 8 {
			return b, false
		}
		m.Arity = int(int32(binary.LittleEndian.Uint32(p[0:4])))
		nvals := binary.LittleEndian.Uint32(p[4:8])
		p = p[8:]
		if uint64(nvals)*8 > uint64(len(p)) {
			return b, false
		}
		if nvals > 0 {
			m.Rows = make([]values.Value, nvals)
			for j := range m.Rows {
				m.Rows[j] = values.Value(binary.LittleEndian.Uint64(p[j*8 : j*8+8]))
			}
		}
		p = p[nvals*8:]
		if m.Validate() != nil {
			return b, false
		}
		b.Muts = append(b.Muts, m)
	}
	if len(p) != 0 {
		return b, false
	}
	return b, true
}
