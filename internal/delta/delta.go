// Package delta is the engine's write path: a per-relation write-ahead
// log of inserts and deletes, and the answer-level difference
// computation that lets a built access structure absorb those writes as
// a small sorted overlay instead of a full O(n log n) re-preprocess.
//
// The package has three parts:
//
//   - Mutation/Batch: the record types. A Batch is one atomic group of
//     relational writes stamped with the engine version (WAL sequence
//     number) it produced.
//   - Log: the bounded in-memory WAL tail. Readers holding a structure
//     built at version v ask Since(v) for everything that happened
//     after it; a truncated tail (or an opaque reset) answers ok=false,
//     which the engine treats as "rebuild from scratch".
//   - WAL: the durable on-disk log (wal.go) with CRC-framed records and
//     a torn-tail-tolerant replay, composing with snapshots: checkpoint
//     = snapshot + WAL truncation, open = warm start + replay.
//
// Diff (eval.go) turns a span of batches into the answer-level edit the
// overlay needs: which answers appeared and which disappeared.
package delta

import (
	"fmt"
	"sync"

	"rankedaccess/internal/values"
)

// Op is the kind of one mutation.
type Op uint8

const (
	// OpInsert appends rows to a relation.
	OpInsert Op = 1
	// OpDelete removes every occurrence of each row from a relation.
	OpDelete Op = 2
	// OpReset marks a relation as opaquely changed (Engine.Mutate): the
	// row-level delta is unknown, so structures over the relation must
	// rebuild. Rows is empty. On replay OpReset applies nothing — opaque
	// mutations are durable only through the next checkpoint, exactly
	// like every write was before the WAL existed.
	OpReset Op = 3
)

// String names the op for diagnostics.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpReset:
		return "reset"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Mutation is one relational write: rows of one relation inserted,
// deleted, or opaquely reset. Rows is flat with stride Arity.
type Mutation struct {
	Op    Op
	Rel   string
	Arity int
	Rows  []values.Value
}

// NumRows returns the number of rows the mutation carries.
func (m *Mutation) NumRows() int {
	if m.Arity == 0 {
		return 0
	}
	return len(m.Rows) / m.Arity
}

// Row returns the i-th row as a capped subslice of the flat storage.
func (m *Mutation) Row(i int) []values.Value {
	return m.Rows[i*m.Arity : (i+1)*m.Arity : (i+1)*m.Arity]
}

// Validate checks internal consistency (flat length divides by arity,
// ops in range, reset carries no rows).
func (m *Mutation) Validate() error {
	switch m.Op {
	case OpInsert, OpDelete:
		if m.Arity <= 0 {
			return fmt.Errorf("delta: %s %s: arity %d", m.Op, m.Rel, m.Arity)
		}
		if len(m.Rows)%m.Arity != 0 {
			return fmt.Errorf("delta: %s %s: %d values do not divide into rows of arity %d", m.Op, m.Rel, len(m.Rows), m.Arity)
		}
	case OpReset:
		if len(m.Rows) != 0 {
			return fmt.Errorf("delta: reset %s carries rows", m.Rel)
		}
	default:
		return fmt.Errorf("delta: unknown op %d", m.Op)
	}
	if m.Rel == "" {
		return fmt.Errorf("delta: mutation without a relation")
	}
	return nil
}

// Batch is one atomic group of mutations. Seq is the engine version the
// batch produced: a structure built at version v reflects exactly the
// batches with Seq ≤ v.
type Batch struct {
	Seq  uint64
	Muts []Mutation
}

// Touches reports whether the batch writes any of the given relations.
func (b *Batch) Touches(rels map[string]bool) bool {
	for i := range b.Muts {
		if rels[b.Muts[i].Rel] {
			return true
		}
	}
	return false
}

// DefaultLogTail bounds the in-memory WAL tail when NewLog is given a
// non-positive limit: readers more than this many batches behind
// rebuild instead of catching up.
const DefaultLogTail = 4096

// Log is the bounded in-memory WAL tail. Appends and resets happen
// under the engine's exclusive lock; Since is called concurrently by
// readers, so the Log carries its own mutex.
type Log struct {
	mu      sync.Mutex
	base    uint64 // everything with Seq ≤ base has been dropped
	batches []Batch
	limit   int
}

// NewLog returns an empty log retaining at most limit batches
// (DefaultLogTail when limit ≤ 0).
func NewLog(limit int) *Log {
	if limit <= 0 {
		limit = DefaultLogTail
	}
	return &Log{limit: limit}
}

// Append records one batch. Seq must be strictly increasing; the oldest
// batches are dropped when the tail exceeds its limit.
func (l *Log) Append(b Batch) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.batches = append(l.batches, b)
	if over := len(l.batches) - l.limit; over > 0 {
		l.base = l.batches[over-1].Seq
		l.batches = append(l.batches[:0], l.batches[over:]...)
	}
}

// Since returns the batches with Seq > seq, oldest first. ok is false
// when the tail no longer reaches back to seq (dropped or reset): the
// caller cannot catch up incrementally and must rebuild.
func (l *Log) Since(seq uint64) ([]Batch, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < l.base {
		return nil, false
	}
	// Batches are sorted by Seq; find the first with Seq > seq.
	i := len(l.batches)
	for i > 0 && l.batches[i-1].Seq > seq {
		i--
	}
	out := make([]Batch, len(l.batches)-i)
	copy(out, l.batches[i:])
	return out, true
}

// Reset drops the whole tail and declares seq the new floor: any
// Since(v) with v < seq reports ok=false from here on. Used for
// discontinuities the log cannot express (snapshot restore).
func (l *Log) Reset(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.base = seq
	l.batches = l.batches[:0]
}

// Last returns the highest appended Seq (or the reset floor).
func (l *Log) Last() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n := len(l.batches); n > 0 {
		return l.batches[n-1].Seq
	}
	return l.base
}
