package checked

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddBasic(t *testing.T) {
	got, err := Add(2, 3)
	if err != nil || got != 5 {
		t.Fatalf("Add(2,3) = %d, %v", got, err)
	}
}

func TestAddOverflow(t *testing.T) {
	if _, err := Add(math.MaxInt64, 1); err != ErrOverflow {
		t.Fatalf("expected overflow, got %v", err)
	}
	if got, err := Add(math.MaxInt64, 0); err != nil || got != math.MaxInt64 {
		t.Fatalf("MaxInt64+0 should be fine: %d, %v", got, err)
	}
}

func TestAddNegative(t *testing.T) {
	if _, err := Add(-1, 2); err == nil {
		t.Fatal("expected error for negative operand")
	}
	if _, err := Add(2, -1); err == nil {
		t.Fatal("expected error for negative operand")
	}
}

func TestMulBasic(t *testing.T) {
	got, err := Mul(6, 7)
	if err != nil || got != 42 {
		t.Fatalf("Mul(6,7) = %d, %v", got, err)
	}
}

func TestMulZero(t *testing.T) {
	got, err := Mul(0, math.MaxInt64)
	if err != nil || got != 0 {
		t.Fatalf("Mul(0,max) = %d, %v", got, err)
	}
}

func TestMulOverflow(t *testing.T) {
	if _, err := Mul(math.MaxInt64, 2); err != ErrOverflow {
		t.Fatalf("expected overflow, got %v", err)
	}
	if _, err := Mul(1<<32, 1<<32); err != ErrOverflow {
		t.Fatalf("expected overflow for 2^64, got %v", err)
	}
	if got, err := Mul(1<<31, 1<<31); err != nil || got != 1<<62 {
		t.Fatalf("2^62 should fit: %d, %v", got, err)
	}
}

func TestMulNegative(t *testing.T) {
	if _, err := Mul(-3, 4); err == nil {
		t.Fatal("expected error for negative operand")
	}
}

func TestMulMatchesBigIntSemantics(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int64(a)>>1, int64(b)>>1 // products of 31-bit values fit in int64
		got, err := Mul(x, y)
		return err == nil && got == x*y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounterHappyPath(t *testing.T) {
	c := NewCounter(1)
	c.Mul(10)
	c.Add(5)
	c.Mul(2)
	if c.Err() != nil || c.Value() != 30 {
		t.Fatalf("counter = %d, %v", c.Value(), c.Err())
	}
}

func TestCounterOverflowSticks(t *testing.T) {
	c := NewCounter(math.MaxInt64)
	c.Add(1)
	if c.Err() != ErrOverflow {
		t.Fatalf("expected overflow, got %v", c.Err())
	}
	c.Add(0) // must not clear the error
	if c.Err() != ErrOverflow {
		t.Fatal("overflow error must be sticky")
	}
}

func TestCounterNegativeInit(t *testing.T) {
	c := NewCounter(-1)
	if c.Err() == nil {
		t.Fatal("expected error for negative initial value")
	}
}
