// Package checked provides overflow-checked arithmetic on non-negative
// int64 counters.
//
// Direct-access structures multiply answer counts across join-tree
// branches (the "factor" of Algorithm 1 in the paper), so a database with
// a few million tuples and a handful of atoms can produce counts near or
// beyond 2^63. Silent wraparound would corrupt every index computation,
// so all counting arithmetic in this repository goes through this package
// and reports overflow explicitly.
package checked

import (
	"errors"
	"math/bits"
)

// ErrOverflow is returned when a counting operation exceeds the int64 range.
var ErrOverflow = errors.New("checked: answer count overflows int64")

// Add returns a+b or ErrOverflow. Both operands must be non-negative.
func Add(a, b int64) (int64, error) {
	if a < 0 || b < 0 {
		return 0, errors.New("checked: negative operand")
	}
	s := a + b
	if s < a {
		return 0, ErrOverflow
	}
	return s, nil
}

// Mul returns a*b or ErrOverflow. Both operands must be non-negative.
func Mul(a, b int64) (int64, error) {
	if a < 0 || b < 0 {
		return 0, errors.New("checked: negative operand")
	}
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	if hi != 0 || lo > uint64(1<<63-1) {
		return 0, ErrOverflow
	}
	return int64(lo), nil
}

// Counter accumulates sums and products of non-negative counts and
// remembers whether any operation overflowed. It lets hot loops avoid
// per-operation error handling: check Err once at the end.
type Counter struct {
	val int64
	err error
}

// NewCounter returns a counter initialized to v.
func NewCounter(v int64) *Counter {
	c := &Counter{}
	if v < 0 {
		c.err = errors.New("checked: negative initial value")
		return c
	}
	c.val = v
	return c
}

// Add accumulates c += v.
func (c *Counter) Add(v int64) {
	if c.err != nil {
		return
	}
	c.val, c.err = Add(c.val, v)
}

// Mul accumulates c *= v.
func (c *Counter) Mul(v int64) {
	if c.err != nil {
		return
	}
	c.val, c.err = Mul(c.val, v)
}

// Value returns the accumulated value. It is meaningless if Err is non-nil.
func (c *Counter) Value() int64 { return c.val }

// Err reports the first overflow (or misuse) encountered, if any.
func (c *Counter) Err() error { return c.err }
