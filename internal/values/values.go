// Package values provides dictionary encoding of domain values.
//
// All relational machinery in this repository works over int64 value
// codes. A Dict maps external (string) constants to codes and back. The
// order of codes is the order used by lexicographic comparisons, so a
// Dict can either be built in sorted insertion order (codes follow the
// order the caller wants) or populated from integers directly, in which
// case the integer itself is the code and the natural numeric order is
// used.
package values

import (
	"fmt"
	"sort"
)

// Value is a dictionary-encoded domain value. Ordering of Values defines
// the ordering of the domain used by LEX orders.
type Value = int64

// Dict is a bidirectional mapping between string constants and Values.
// The zero value is not usable; use NewDict.
type Dict struct {
	toCode map[string]Value
	toName []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{toCode: make(map[string]Value)}
}

// Intern returns the code of name, assigning the next free code if name
// is new. Codes are assigned in first-seen order; use SortedDict when the
// code order must agree with the lexicographic order of the names.
func (d *Dict) Intern(name string) Value {
	if v, ok := d.toCode[name]; ok {
		return v
	}
	v := Value(len(d.toName))
	d.toCode[name] = v
	d.toName = append(d.toName, name)
	return v
}

// Lookup returns the code of name and whether it is present.
func (d *Dict) Lookup(name string) (Value, bool) {
	v, ok := d.toCode[name]
	return v, ok
}

// Name returns the string form of v, or a placeholder for codes that were
// never interned (e.g. raw integer data).
func (d *Dict) Name(v Value) string {
	if v >= 0 && int(v) < len(d.toName) {
		return d.toName[v]
	}
	return fmt.Sprintf("#%d", v)
}

// Len returns the number of interned values.
func (d *Dict) Len() int { return len(d.toName) }

// Names returns a copy of the interned names in code order, for
// persistence.
func (d *Dict) Names() []string {
	return append([]string(nil), d.toName...)
}

// DictFromNames rebuilds a dictionary whose codes follow the given name
// order exactly (the inverse of Names). Duplicate names keep their
// first code, matching Intern semantics.
func DictFromNames(names []string) *Dict {
	d := NewDict()
	for _, n := range names {
		d.Intern(n)
	}
	return d
}

// SortedDict builds a dictionary from names such that code order equals
// the sorted order of the names. Duplicate names are interned once.
func SortedDict(names []string) *Dict {
	uniq := make([]string, 0, len(names))
	seen := make(map[string]struct{}, len(names))
	for _, n := range names {
		if _, ok := seen[n]; !ok {
			seen[n] = struct{}{}
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	d := NewDict()
	for _, n := range uniq {
		d.Intern(n)
	}
	return d
}

// Packer builds composite values out of pairs of values. The §8 reductions
// of the paper (and the maximal-contraction transformer of Lemma 7.7)
// replace a variable's value by the concatenation of the values it
// implies/absorbs; Packer assigns a fresh code to each distinct pair and
// can invert the packing.
//
// Pack preserves order in the following sense: codes are assigned in
// ascending order of first use, so callers that need an order-compatible
// packing must pack pairs in the desired order (the SUM machinery does
// not depend on code order, and the LEX machinery packs in sorted order).
type Packer struct {
	codes map[[2]Value]Value
	pairs [][2]Value
	base  Value
}

// NewPacker returns a Packer whose fresh codes start at base. Choose base
// above any code used by the underlying data to keep packed and plain
// codes disjoint.
func NewPacker(base Value) *Packer {
	return &Packer{codes: make(map[[2]Value]Value), base: base}
}

// Pack returns the code for the pair (a, b), allocating one if needed.
func (p *Packer) Pack(a, b Value) Value {
	k := [2]Value{a, b}
	if c, ok := p.codes[k]; ok {
		return c
	}
	c := p.base + Value(len(p.pairs))
	p.codes[k] = c
	p.pairs = append(p.pairs, k)
	return c
}

// Unpack inverts Pack. The second return value is false if v was not
// produced by this Packer.
func (p *Packer) Unpack(v Value) (a, b Value, ok bool) {
	i := v - p.base
	if i < 0 || int(i) >= len(p.pairs) {
		return 0, 0, false
	}
	return p.pairs[i][0], p.pairs[i][1], true
}

// Len returns the number of distinct pairs packed so far.
func (p *Packer) Len() int { return len(p.pairs) }
