package values

import (
	"testing"
	"testing/quick"
)

func TestInternRoundTrip(t *testing.T) {
	d := NewDict()
	a := d.Intern("boston")
	b := d.Intern("nyc")
	if a == b {
		t.Fatal("distinct names must get distinct codes")
	}
	if d.Intern("boston") != a {
		t.Fatal("intern must be idempotent")
	}
	if d.Name(a) != "boston" || d.Name(b) != "nyc" {
		t.Fatal("name round trip failed")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestLookupMissing(t *testing.T) {
	d := NewDict()
	if _, ok := d.Lookup("missing"); ok {
		t.Fatal("lookup of missing name must fail")
	}
}

func TestNameOfUninterned(t *testing.T) {
	d := NewDict()
	if got := d.Name(42); got != "#42" {
		t.Fatalf("Name(42) = %q", got)
	}
}

func TestSortedDictOrder(t *testing.T) {
	d := SortedDict([]string{"pear", "apple", "fig", "apple"})
	va, _ := d.Lookup("apple")
	vf, _ := d.Lookup("fig")
	vp, _ := d.Lookup("pear")
	if !(va < vf && vf < vp) {
		t.Fatalf("codes must follow sorted name order: %d %d %d", va, vf, vp)
	}
	if d.Len() != 3 {
		t.Fatalf("duplicates must be interned once, Len=%d", d.Len())
	}
}

func TestPackerRoundTrip(t *testing.T) {
	p := NewPacker(1000)
	c1 := p.Pack(3, 4)
	c2 := p.Pack(4, 3)
	if c1 == c2 {
		t.Fatal("(3,4) and (4,3) must pack differently")
	}
	if p.Pack(3, 4) != c1 {
		t.Fatal("pack must be idempotent")
	}
	a, b, ok := p.Unpack(c1)
	if !ok || a != 3 || b != 4 {
		t.Fatalf("unpack = %d,%d,%v", a, b, ok)
	}
	if _, _, ok := p.Unpack(999); ok {
		t.Fatal("unpack below base must fail")
	}
	if _, _, ok := p.Unpack(1002); ok {
		t.Fatal("unpack of unallocated code must fail")
	}
}

func TestPackerQuick(t *testing.T) {
	p := NewPacker(1 << 40)
	f := func(a, b int32) bool {
		c := p.Pack(Value(a), Value(b))
		x, y, ok := p.Unpack(c)
		return ok && x == Value(a) && y == Value(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
