// Package tables regenerates the paper's figures and tables as text, for
// the cmd/tables tool and the reproduction tests:
//
//   - Figure 1: the classification overview of self-join-free CQs for
//     direct access and selection under LEX and SUM orders;
//   - Figure 2 / Example 1.1: the orderings of the running example's
//     answers and the tractability of each bullet;
//   - Figure 4: the preprocessing annotations (weights, starts) of the
//     layered structure for Example 3.6;
//   - Figure 8: the possibility table for direct access by SUM;
//   - the §8 FD examples.
package tables

import (
	"fmt"
	"strings"

	"rankedaccess/internal/access"
	"rankedaccess/internal/baseline"
	"rankedaccess/internal/classify"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/fd"
	"rankedaccess/internal/order"
)

// Fig2DB returns the example database of Figure 2(a).
func Fig2DB() *database.Instance {
	in := database.NewInstance()
	in.AddRow("R", 1, 5)
	in.AddRow("R", 1, 2)
	in.AddRow("R", 6, 2)
	in.AddRow("S", 5, 3)
	in.AddRow("S", 5, 4)
	in.AddRow("S", 5, 6)
	in.AddRow("S", 2, 5)
	return in
}

// Fig2Query returns the running 2-path query.
func Fig2Query() *cq.Query { return cq.MustParse("Q(x, y, z) :- R(x, y), S(y, z)") }

// Fig1 renders the Figure 1 overview: a catalog of representative
// self-join-free CQs placed into the regions of the two Venn diagrams.
func Fig1() string {
	type row struct {
		label, query, lexOrder string
	}
	rows := []row{
		{"free-connex, no trio, L-connex", "Q(x, y, z) :- R(x, y), S(y, z)", "x, y, z"},
		{"free-connex, disruptive trio", "Q(x, y, z) :- R(x, y), S(y, z)", "x, z, y"},
		{"free-connex, not L-connex", "Q(x, y, z) :- R(x, y), S(y, z)", "x, z"},
		{"acyclic, not free-connex", "Q(x, z) :- R(x, y), S(y, z)", "x, z"},
		{"free vars in one atom", "Q(x, y) :- R(x, y), S(y, z)", "x, y"},
		{"fmh = 2 (2-path)", "Q(x, y, z) :- R(x, y), S(y, z)", ""},
		{"fmh = 3 (full 3-path)", "Q(x, y, z, u) :- R(x, y), S(y, z), T(z, u)", ""},
		{"cyclic (triangle)", "Q(x, y, z) :- R(x, y), S(y, z), T(z, x)", "x, y, z"},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — classification of representative SJ-free CQs\n")
	fmt.Fprintf(&b, "%-34s | %-44s | %-10s | %-11s | %-10s | %-11s\n",
		"class", "query (order)", "DA-LEX", "Sel-LEX", "DA-SUM", "Sel-SUM")
	b.WriteString(strings.Repeat("-", 135) + "\n")
	for _, r := range rows {
		q := cq.MustParse(r.query)
		l, err := order.ParseLex(q, r.lexOrder)
		if err != nil {
			panic(err)
		}
		mark := func(v classify.Verdict) string {
			if v.Tractable {
				return "tractable"
			}
			return "hard"
		}
		qo := r.query
		if r.lexOrder != "" {
			qo += " ⟨" + r.lexOrder + "⟩"
		}
		fmt.Fprintf(&b, "%-34s | %-44s | %-10s | %-11s | %-10s | %-11s\n",
			r.label, qo,
			mark(classify.DirectAccessLex(q, l)),
			mark(classify.SelectionLex(q, l)),
			mark(classify.DirectAccessSum(q)),
			mark(classify.SelectionSum(q)))
	}
	return b.String()
}

// Fig2 renders the three orderings of Figure 2(b–d) recomputed from the
// example database.
func Fig2() string {
	q := Fig2Query()
	in := Fig2DB()
	var b strings.Builder
	render := func(title string, l order.Lex, vars []string) {
		fmt.Fprintf(&b, "%s\n", title)
		answers := baseline.SortedByLex(q, in, l)
		fmt.Fprintf(&b, "      %s\n", strings.Join(vars, "  "))
		for i, a := range answers {
			fmt.Fprintf(&b, "  #%d ", i+1)
			for _, name := range vars {
				v, _ := q.VarByName(name)
				fmt.Fprintf(&b, "  %d", a[v])
			}
			fmt.Fprintln(&b)
		}
	}
	lxyz, _ := order.ParseLex(q, "x, y, z")
	render("(b) LEX ⟨x, y, z⟩", lxyz, []string{"x", "y", "z"})
	lxzy, _ := order.ParseLex(q, "x, z, y")
	render("(c) LEX ⟨x, z, y⟩", lxzy, []string{"x", "z", "y"})

	w := order.IdentitySum(q.Head...)
	answers := baseline.SortedBySum(q, in, w)
	fmt.Fprintf(&b, "(d) SUM x+y+z\n      x  y  z  x+y+z\n")
	for i, a := range answers {
		x, _ := q.VarByName("x")
		y, _ := q.VarByName("y")
		z, _ := q.VarByName("z")
		fmt.Fprintf(&b, "  #%d   %d  %d  %d  %v\n", i+1, a[x], a[y], a[z], w.AnswerWeight(q, a))
	}
	return b.String()
}

// Example11 renders the tractability of each bullet of Example 1.1.
func Example11() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Example 1.1 — the 2-path query under orders, projections, FDs")
	q := Fig2Query()
	qProj := cq.MustParse("Q(x, z) :- R(x, y), S(y, z)")
	qXY := cq.MustParse("Q(x, y) :- R(x, y), S(y, z)")

	l := func(qq *cq.Query, s string) order.Lex {
		o, err := order.ParseLex(qq, s)
		if err != nil {
			panic(err)
		}
		return o
	}
	emit := func(label string, v classify.Verdict) {
		side := "tractable"
		if !v.Tractable {
			side = "intractable"
		}
		fmt.Fprintf(&b, "  %-46s %s\n", label, side)
	}
	emit("LEX ⟨x,y,z⟩: direct access", classify.DirectAccessLex(q, l(q, "x, y, z")))
	emit("LEX ⟨x,z,y⟩: direct access", classify.DirectAccessLex(q, l(q, "x, z, y")))
	emit("LEX ⟨x,z,y⟩: selection", classify.SelectionLex(q, l(q, "x, z, y")))
	emit("LEX ⟨x,z⟩: direct access", classify.DirectAccessLex(q, l(q, "x, z")))
	emit("LEX ⟨x,z⟩: selection", classify.SelectionLex(q, l(q, "x, z")))
	emit("LEX ⟨x,z⟩, y projected: selection", classify.SelectionLex(qProj, l(qProj, "x, z")))
	v, _ := classify.DirectAccessLexFD(q, l(q, "x, z, y"), fd.MustParse(q, "R: y -> x"))
	emit("LEX ⟨x,z,y⟩ + FD R: y→x: direct access", v)
	v, _ = classify.DirectAccessLexFD(q, l(q, "x, z, y"), fd.MustParse(q, "S: y -> z"))
	emit("LEX ⟨x,z,y⟩ + FD S: y→z: direct access", v)
	v, _ = classify.DirectAccessLexFD(q, l(q, "x, z, y"), fd.MustParse(q, "R: x -> y"))
	emit("LEX ⟨x,z,y⟩ + FD R: x→y: direct access", v)
	v, _ = classify.DirectAccessLexFD(q, l(q, "x, z, y"), fd.MustParse(q, "S: z -> y"))
	emit("LEX ⟨x,z,y⟩ + FD S: z→y: direct access", v)
	emit("SUM x+y+z: direct access", classify.DirectAccessSum(q))
	emit("SUM x+y+z: selection", classify.SelectionSum(q))
	emit("SUM x+y, z projected: direct access", classify.DirectAccessSum(qXY))
	emit("SUM x+z, y projected: selection", classify.SelectionSum(qProj))
	return b.String()
}

// Fig4 renders the preprocessing annotations of Example 3.6 (the layered
// structure of query Q3 over the Figure 4 database).
func Fig4() (string, error) {
	q := cq.MustParse("Q3(v1, v2, v3, v4) :- R(v1, v3), S(v2, v4)")
	in := database.NewInstance()
	in.AddRow("R", 1, 1)
	in.AddRow("R", 1, 2)
	in.AddRow("R", 2, 2)
	in.AddRow("R", 2, 3)
	in.AddRow("S", 1, 1)
	in.AddRow("S", 1, 2)
	in.AddRow("S", 1, 3)
	in.AddRow("S", 2, 4)
	l, _ := order.ParseLex(q, "v1, v2, v3, v4")
	la, err := access.BuildLex(q, in, l)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — preprocessing of Q3 (a1=1, a2=2, b1=1, b2=2, c_i=i, d_i=i)\n")
	names := []string{"R' (v1)", "S' (v2)", "R (v1,v3)", "S (v2,v4)"}
	for layer := 0; layer < la.LayerCount(); layer++ {
		fmt.Fprintf(&b, "%s:\n", names[layer])
		for _, d := range la.DumpLayer(layer) {
			fmt.Fprintf(&b, "  key=%v value=%d weight=%d start=%d\n", d.Key, d.Value, d.Weight, d.Start)
		}
	}
	fmt.Fprintf(&b, "total answers: %d\n", la.Total())
	a, err := la.Access(12)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "access(k=12) → (%d, %d, %d, %d)   [expected (a2, b1, c3, d2) = (2, 1, 3, 2)]\n",
		a[mustVar(q, "v1")], a[mustVar(q, "v2")], a[mustVar(q, "v3")], a[mustVar(q, "v4")])
	return b.String(), nil
}

func mustVar(q *cq.Query, name string) cq.VarID {
	v, ok := q.VarByName(name)
	if !ok {
		panic("unknown variable " + name)
	}
	return v
}

// Fig8 renders the possibility table for direct access by SUM.
func Fig8() string {
	rows := []struct {
		cond, query string
	}{
		{"acyclic, α_free = 1", "Q(x, y) :- R(x, y), S(y, z)"},
		{"acyclic, α_free = 2", "Q(x, y, z) :- R(x, y), S(y, z), T(z, u)"},
		{"acyclic, α_free ≥ 3", "Q(x, y, z) :- R(x), S(y), T(z)"},
		{"cyclic", "Q(x, y, z) :- R(x, y), S(y, z), T(z, x)"},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 — direct access by SUM for SJ-free CQs\n")
	fmt.Fprintf(&b, "%-22s | %-44s | %s\n", "condition", "example query", "verdict")
	b.WriteString(strings.Repeat("-", 120) + "\n")
	for _, r := range rows {
		q := cq.MustParse(r.query)
		v := classify.DirectAccessSum(q)
		fmt.Fprintf(&b, "%-22s | %-44s | %s\n", r.cond, r.query, v.String())
	}
	return b.String()
}

// FDExamples renders the §8 worked examples.
func FDExamples() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Section 8 — unary FDs change the frontier")
	q2p := cq.MustParse("Q(x, z) :- R(x, y), S(y, z)")
	ext := fd.Extend(q2p, fd.MustParse(q2p, "S: y -> z"))
	fmt.Fprintf(&b, "  Example 8.3: %s + FD S: y→z\n", q2p.String())
	fmt.Fprintf(&b, "    Q+ = %s\n", ext.Query.String())
	v, _ := classify.DirectAccessSumFD(q2p, fd.MustParse(q2p, "S: y -> z"))
	fmt.Fprintf(&b, "    direct access by SUM: %s\n", v.String())

	q814 := cq.MustParse("Q(v1, v2, v3, v4) :- R(v1, v3), S(v3, v2), T(v2, v4)")
	l814, _ := order.ParseLex(q814, "v1, v2, v3, v4")
	v2, w := classify.DirectAccessLexFD(q814, l814, fd.MustParse(q814, "R: v1 -> v3"))
	fmt.Fprintf(&b, "  Example 8.14: order ⟨v1,v2,v3,v4⟩ + FD R: v1→v3 reorders to ⟨%s⟩: %s\n",
		w.LPlus.Render(q814), sideOf(v2))

	q819 := cq.MustParse("Q(v1, v2) :- R(v1, v3), S(v3, v2)")
	l819, _ := order.ParseLex(q819, "v1, v2")
	v3, w3 := classify.DirectAccessLexFD(q819, l819, fd.MustParse(q819, "S: v2 -> v3"))
	fmt.Fprintf(&b, "  Example 8.19: ⟨v1,v2⟩ + FD S: v2→v3 reorders to ⟨%s⟩: %s (trio %v)\n",
		w3.LPlus.Render(q819), sideOf(v3), v3.Trio)
	return b.String()
}

func sideOf(v classify.Verdict) string {
	if v.Tractable {
		return "tractable"
	}
	return "intractable"
}
