package tables

import (
	"strings"
	"testing"
)

func TestFig1(t *testing.T) {
	out := Fig1()
	for _, want := range []string{
		"free-connex, no trio, L-connex",
		"cyclic (triangle)",
		"tractable",
		"hard",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig1 output missing %q:\n%s", want, out)
		}
	}
	// The 2-path with a complete tractable order: DA-LEX tractable but
	// DA-SUM hard — the row must show both.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "no trio") {
			if !strings.Contains(line, "tractable") || !strings.Contains(line, "hard") {
				t.Fatalf("unexpected row: %s", line)
			}
		}
	}
}

func TestFig2(t *testing.T) {
	out := Fig2()
	// Figure 2(b) first row: 1 2 5; last row: 6 2 5.
	if !strings.Contains(out, "#1   1  2  5") {
		t.Fatalf("Fig2(b) first row missing:\n%s", out)
	}
	if !strings.Contains(out, "#5   6  2  5") {
		t.Fatalf("Fig2 last row missing:\n%s", out)
	}
	// Figure 2(c) row #3 is (x=1, z=5, y=2).
	if !strings.Contains(out, "#3   1  5  2") {
		t.Fatalf("Fig2(c) row 3 missing:\n%s", out)
	}
	// Figure 2(d): weights 8 and 13 appear.
	if !strings.Contains(out, "8") || !strings.Contains(out, "13") {
		t.Fatalf("Fig2(d) weights missing:\n%s", out)
	}
}

func TestExample11(t *testing.T) {
	out := Example11()
	cases := []struct {
		label string
		want  string
	}{
		{"LEX ⟨x,y,z⟩: direct access", "tractable"},
		{"LEX ⟨x,z,y⟩: direct access", "intractable"},
		{"LEX ⟨x,z,y⟩: selection", "tractable"},
		{"LEX ⟨x,z⟩: direct access", "intractable"},
		{"LEX ⟨x,z⟩, y projected: selection", "intractable"},
		{"FD R: y→x: direct access", "tractable"},
		{"FD S: y→z: direct access", "tractable"},
		{"FD R: x→y: direct access", "tractable"},
		{"FD S: z→y: direct access", "intractable"},
		{"SUM x+y+z: direct access", "intractable"},
		{"SUM x+y+z: selection", "tractable"},
		{"SUM x+y, z projected: direct access", "tractable"},
		{"SUM x+z, y projected: selection", "intractable"},
	}
	for _, c := range cases {
		found := false
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, c.label) {
				found = true
				fields := strings.Fields(line)
				got := fields[len(fields)-1]
				if got != c.want {
					t.Errorf("%s: got %s, want %s", c.label, got, c.want)
				}
			}
		}
		if !found {
			t.Errorf("bullet %q missing from output", c.label)
		}
	}
}

func TestFig4(t *testing.T) {
	out, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"total answers: 16",
		"value=1 weight=8 start=0", // R' tuple a1
		"value=2 weight=8 start=8", // R' tuple a2
		"value=1 weight=3 start=0", // S' tuple b1
		"value=2 weight=1 start=3", // S' tuple b2
		"access(k=12) → (2, 1, 3, 2)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig4 missing %q:\n%s", want, out)
		}
	}
}

func TestFig8(t *testing.T) {
	out := Fig8()
	if !strings.Contains(out, "α_free = 1") || !strings.Contains(out, "TRACTABLE ⟨n log n, 1⟩") {
		t.Fatalf("Fig8 tractable row missing:\n%s", out)
	}
	if !strings.Contains(out, "3SUM") || !strings.Contains(out, "HYPERCLIQUE") {
		t.Fatalf("Fig8 hardness hypotheses missing:\n%s", out)
	}
}

func TestFDExamples(t *testing.T) {
	out := FDExamples()
	if !strings.Contains(out, "Q+ = Q(x, z) :- R(x, y, z), S(y, z)") {
		t.Fatalf("Example 8.3 extension missing:\n%s", out)
	}
	if !strings.Contains(out, "⟨v1, v3, v2, v4⟩: tractable") {
		t.Fatalf("Example 8.14 reordering missing:\n%s", out)
	}
	if !strings.Contains(out, "Example 8.19") || !strings.Contains(out, "intractable") {
		t.Fatalf("Example 8.19 missing:\n%s", out)
	}
}
