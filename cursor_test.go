// Facade-level coverage for the prepared-query registry and cursors:
// sentinel errors hold across layers via errors.Is, and steady-state
// cursor probing is allocation-free (the acceptance bar for
// BenchmarkCursorNext).
package rankedaccess

import (
	"errors"
	"io"
	"math/rand"
	"testing"

	"rankedaccess/internal/workload"
)

// buildStreamEngine registers a two-path query on a generated instance.
func buildStreamEngine(tb testing.TB, n int) (*Engine, *PreparedQuery) {
	tb.Helper()
	rng := rand.New(rand.NewSource(9))
	_, in := workload.TwoPath(rng, n, n/8, 0.3)
	e := NewEngine(in, EngineOptions{})
	pq, err := e.Register("bench", EngineSpec{
		Query: "Q(x, y, z) :- R(x, y), S(y, z)",
		Order: "x, y, z",
	})
	if err != nil {
		tb.Fatal(err)
	}
	return e, pq
}

func TestFacadeSentinelsAcrossLayers(t *testing.T) {
	e, pq := buildStreamEngine(t, 1<<10)

	if _, err := e.Prepared("ghost"); !errors.Is(err, ErrNotPrepared) {
		t.Fatalf("Prepared(ghost) = %v, want ErrNotPrepared", err)
	}

	cur, err := pq.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Seek(cur.Total()+1, io.SeekStart); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("seek past end = %v, want ErrOutOfRange", err)
	}
	if _, err := cur.Handle().Access(cur.Total()); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("access past end = %v, want ErrOutOfRange", err)
	}

	// The intractable sentinel surfaces from the raw builder...
	q := MustParseQuery("Q(x, y, z) :- R(x, y), S(y, z)")
	l, err := ParseLex(q, "x, z, y") // canonical intractable order
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDirectAccess(q, NewInstance(), l, nil); !errors.Is(err, ErrIntractable) {
		t.Fatalf("intractable build = %v, want ErrIntractable", err)
	}

	// ...and mutation does NOT invalidate prepared cursors: they are
	// pinned to their epoch and keep streaming across writes.
	e.Mutate(func(in *Instance) { in.AddRow("R", 1, 1) })
	if _, ok, err := cur.Next(nil); !ok || err != nil {
		t.Fatalf("post-mutation Next = (%v, %v), want a live cursor", ok, err)
	}
}

// TestCursorNextZeroAllocs is the acceptance guard: a steady-state
// cursor Next through a reused destination buffer must not allocate.
func TestCursorNextZeroAllocs(t *testing.T) {
	_, pq := buildStreamEngine(t, 1<<12)
	cur, err := pq.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]Value, 0, 8)
	if n := testing.AllocsPerRun(500, func() {
		var ok bool
		dst, ok, err = cur.Next(dst[:0])
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			if _, err := cur.Seek(0, io.SeekStart); err != nil {
				t.Fatal(err)
			}
		}
	}); n != 0 {
		t.Fatalf("steady-state Cursor.Next allocates %v times per probe, want 0", n)
	}
}

// BenchmarkCursorNext measures the prepared-cursor single-step path:
// registry-resident handle, reused destination buffer, one O(log n)
// probe per op. The benchgate requires 0 allocs/op.
func BenchmarkCursorNext(b *testing.B) {
	_, pq := buildStreamEngine(b, 1<<14)
	cur, err := pq.Cursor()
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]Value, 0, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ok bool
		dst, ok, err = cur.Next(dst[:0])
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			if _, err := cur.Seek(0, io.SeekStart); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCursorNextN measures the batched cursor path (amortized
// range access), for contrast with the single-step loop.
func BenchmarkCursorNextN(b *testing.B) {
	const batch = 256
	_, pq := buildStreamEngine(b, 1<<14)
	cur, err := pq.Cursor()
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]Value, 0, batch*3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int
		dst, n, err = cur.NextN(dst[:0], batch)
		if err != nil {
			b.Fatal(err)
		}
		if n < batch {
			if _, err := cur.Seek(0, io.SeekStart); err != nil {
				b.Fatal(err)
			}
		}
	}
}
