// Benchmarks regenerating the empirical counterpart of every figure,
// table, and theorem-level complexity claim in the paper. Run with
//
//	go test -bench=. -benchmem
//
// and compare shapes across the /n=... sub-benchmarks: tractable-side
// preprocessing grows quasilinearly, access stays flat/logarithmic,
// selection grows (quasi)linearly, and the baselines grow with the
// answer-set size. EXPERIMENTS.md records reference runs.
package rankedaccess

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"rankedaccess/internal/access"
	"rankedaccess/internal/baseline"
	"rankedaccess/internal/classify"
	"rankedaccess/internal/database"
	"rankedaccess/internal/engine"
	"rankedaccess/internal/enum"
	"rankedaccess/internal/fd"
	"rankedaccess/internal/order"
	"rankedaccess/internal/par"
	"rankedaccess/internal/selection"
	"rankedaccess/internal/workload"
)

var sizes = []int{1 << 12, 1 << 14, 1 << 16}

// --- Theorem 3.3 (Figure 1, DA-LEX tractable side): ⟨n log n, log n⟩ ---

func BenchmarkThm33_Preprocess(b *testing.B) {
	for _, n := range sizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			q, in := workload.TwoPath(rng, n, n/8, 0.3)
			l, _ := order.ParseLex(q, "x, y, z")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := access.BuildLex(q, in, l); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkThm33_Access(b *testing.B) {
	for _, n := range sizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			q, in := workload.TwoPath(rng, n, n/8, 0.3)
			l, _ := order.ParseLex(q, "x, y, z")
			la, err := access.BuildLex(q, in, l)
			if err != nil {
				b.Fatal(err)
			}
			if la.Total() == 0 {
				b.Fatal("empty join")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := la.Access(rng.Int63n(la.Total())); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkThm33_InvertedAccess(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	q, in := workload.TwoPath(rng, 1<<14, 1<<11, 0.3)
	l, _ := order.ParseLex(q, "x, y, z")
	la, err := access.BuildLex(q, in, l)
	if err != nil {
		b.Fatal(err)
	}
	answers := make([]order.Answer, 256)
	for i := range answers {
		answers[i], _ = la.Access(rng.Int63n(la.Total()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := la.Inverted(answers[i%len(answers)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Theorem 4.1 (partial orders, the §2.5 Q3 example) ---

func BenchmarkThm41_PartialLexAccess(b *testing.B) {
	for _, n := range sizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			q := MustParseQuery("Q3(v1, v2, v3, v4) :- R(v1, v3), S(v2, v4)")
			in := NewInstance()
			for i := 0; i < n; i++ {
				in.AddRow("R", rng.Int63n(int64(n/8)), rng.Int63n(int64(n/8)))
				in.AddRow("S", rng.Int63n(int64(n/8)), rng.Int63n(int64(n/8)))
			}
			l, _ := order.ParseLex(q, "v1, v2")
			la, err := access.BuildLex(q, in, l)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := la.Access(rng.Int63n(la.Total())); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- §2.5 catalog: Q5 and Q6, unsupported by all prior structures ---

func BenchmarkQ5Q6_Access(b *testing.B) {
	cases := []struct{ name, src, ord string }{
		{"Q5", "Q5(v1, v2, v3, v4, v5) :- R1(v1, v3), R2(v3, v4), R3(v2, v5)", "v1, v2, v3, v4, v5"},
		{"Q6", "Q6(v1, v2, v3, v4, v5) :- R1(v1, v2, v4), R2(v2, v3, v5)", "v1, v2, v3, v4, v5"},
	}
	n := 1 << 14
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			q := MustParseQuery(c.src)
			in := NewInstance()
			for _, a := range q.Atoms {
				if in.Relation(a.Rel) != nil {
					continue
				}
				for i := 0; i < n; i++ {
					row := make([]Value, len(a.Vars))
					for j := range row {
						row[j] = rng.Int63n(int64(n / 8))
					}
					in.AddRow(a.Rel, row...)
				}
			}
			l, _ := order.ParseLex(q, c.ord)
			la, err := access.BuildLex(q, in, l)
			if err != nil {
				b.Fatal(err)
			}
			if la.Total() == 0 {
				b.Skip("empty join at this seed")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := la.Access(rng.Int63n(la.Total())); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Theorem 5.1 (Figure 8 tractable row): DA by SUM in ⟨n log n, 1⟩ ---

func BenchmarkThm51_SumPreprocess(b *testing.B) {
	for _, n := range sizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			q, in, w := workload.SingleAtomCover(rng, n, n/4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := access.BuildSum(q, in, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkThm51_SumAccess(b *testing.B) {
	for _, n := range sizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			q, in, w := workload.SingleAtomCover(rng, n, n/4)
			sa, err := access.BuildSum(q, in, w)
			if err != nil {
				b.Fatal(err)
			}
			if sa.Total() == 0 {
				b.Skip("empty")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sa.Access(rng.Int63n(sa.Total())); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Theorem 6.1: selection by LEX in ⟨1, n⟩ on a DA-intractable order ---

func BenchmarkThm61_SelectionLex(b *testing.B) {
	for _, n := range sizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(5))
			q, in := workload.TwoPath(rng, n, n/8, 0.3)
			l, _ := order.ParseLex(q, "x, z, y")
			count, err := selection.CountAnswers(q, in)
			if err != nil || count == 0 {
				b.Fatal("bad workload")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := selection.SelectLex(q, in, l, count/2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Theorem 7.3: selection by SUM in ⟨1, n log n⟩ (fmh = 2) ---

func BenchmarkThm73_SelectionSum(b *testing.B) {
	for _, n := range sizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(6))
			q, in := workload.TwoPath(rng, n, n/8, 0.3)
			w := order.IdentitySum(q.Head...)
			count, err := selection.CountAnswers(q, in)
			if err != nil || count == 0 {
				b.Fatal("bad workload")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := selection.SelectSum(q, in, w, count/2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// X + Y selection (the Frederickson–Johnson setting of Theorem 7.9).
func BenchmarkThm79_XYSelection(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 12, 1 << 14} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			q, in, w := workload.Product(rng, n)
			total := int64(n) * int64(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := selection.SelectSum(q, in, w, total/2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 8 hard side: α_free = 2 baseline (quadratic answer count) ---

func BenchmarkFig8_Alpha2_BaselineMaterialize(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			q, in, w := workload.Example53Instance(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				answers := baseline.SortedBySum(q, in, w)
				if len(answers) != n*n {
					b.Fatal("unexpected answer count")
				}
			}
		})
	}
}

// 3SUM via direct access on the hard instance family (Lemma 5.7's
// reduction run through the baseline, since the structure is impossible).
func BenchmarkFig8_Alpha3_ThreeSumBaseline(b *testing.B) {
	for _, n := range []int{64, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(8))
			av, bv, cv := workload.RandomThreeSum(rng, n, true)
			q, in, w := workload.ThreeSumInstance(av, bv, cv)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				answers := baseline.SortedBySum(q, in, w)
				if len(answers) != n*n*n {
					b.Fatal("unexpected answer count")
				}
			}
		})
	}
}

// --- §5 contrast: ranked enumeration by SUM where DA by SUM is hard ---

func BenchmarkRankedEnum_Top100(b *testing.B) {
	for _, n := range sizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(9))
			q, in := workload.TwoPath(rng, n, n/8, 0.3)
			w := order.IdentitySum(q.Head...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e, err := enum.NewSumEnumerator(q, in, w)
				if err != nil {
					b.Fatal(err)
				}
				answers, _ := e.Drain(100)
				if len(answers) == 0 {
					b.Fatal("no answers")
				}
			}
		})
	}
}

func BenchmarkRankedEnum_Delay(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	q, in := workload.TwoPath(rng, 1<<14, 1<<11, 0.3)
	w := order.IdentitySum(q.Head...)
	e, err := enum.NewSumEnumerator(q, in, w)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := e.Next(); !ok {
			b.StopTimer()
			e, _ = enum.NewSumEnumerator(q, in, w)
			b.StartTimer()
		}
	}
}

// --- Baseline: materialize + sort (what DA replaces) ---

func BenchmarkBaseline_MaterializeSortLex(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 12} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(10))
			q, in := workload.TwoPath(rng, n, n/8, 0.3)
			l, _ := order.ParseLex(q, "x, y, z")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(baseline.SortedByLex(q, in, l)) == 0 {
					b.Fatal("no answers")
				}
			}
		})
	}
}

// --- §8: the FD machinery end to end (Example 8.3 at scale) ---

func BenchmarkSec8_FDExtensionBuild(b *testing.B) {
	for _, n := range sizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(11))
			q := MustParseQuery("Q(x, z) :- R(x, y), S(y, z)")
			fds := fd.MustParse(q, "S: y -> z")
			in := NewInstance()
			dom := int64(n / 8)
			for i := 0; i < n; i++ {
				in.AddRow("R", rng.Int63n(dom), rng.Int63n(dom))
			}
			for y := int64(0); y < dom; y++ {
				in.AddRow("S", y, rng.Int63n(dom))
			}
			l, _ := order.ParseLex(q, "x, z")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := access.BuildLexFD(q, in, l, fds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Classification itself (decidability in query size) ---

func BenchmarkClassify_AllProblems(b *testing.B) {
	q := MustParseQuery("Q5(v1, v2, v3, v4, v5) :- R1(v1, v3), R2(v3, v4), R3(v2, v5)")
	l, _ := order.ParseLex(q, "v1, v2, v3, v4, v5")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = classify.DirectAccessLex(q, l)
		_ = classify.SelectionLex(q, l)
		_ = classify.DirectAccessSum(q)
		_ = classify.SelectionSum(q)
	}
}

// --- "Applicability": cyclic queries via decomposition ---

func BenchmarkApplicability_TriangleViaDecomposition(b *testing.B) {
	for _, n := range []int{512, 1024, 2048} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(17))
			q := MustParseQuery("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)")
			in := NewInstance()
			dom := int64(n / 8)
			for i := 0; i < n; i++ {
				in.AddRow("R", rng.Int63n(dom), rng.Int63n(dom))
				in.AddRow("S", rng.Int63n(dom), rng.Int63n(dom))
				in.AddRow("T", rng.Int63n(dom), rng.Int63n(dom))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := MakeAcyclic(q, in, 2)
				if err != nil {
					b.Fatal(err)
				}
				l, _ := ParseLex(res.Query, "x, y, z")
				la, err := access.BuildLex(res.Query, res.Instance, l)
				if err != nil {
					b.Fatal(err)
				}
				if la.Total() > 0 {
					if _, err := la.Access(la.Total() / 2); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- UCQ extension: union direct access ([15]'s generalization) ---

func BenchmarkUnion_Access(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	q1 := MustParseQuery("Q1(p, via, q) :- Desk(p, via), Meets(via, q)")
	q2 := MustParseQuery("Q2(p, via, q) :- Slot(p, via), SlotOf(via, q)")
	in := NewInstance()
	for i := 0; i < 1<<13; i++ {
		in.AddRow("Desk", rng.Int63n(1<<10), rng.Int63n(1<<7))
		in.AddRow("Meets", rng.Int63n(1<<7), rng.Int63n(1<<10))
		in.AddRow("Slot", rng.Int63n(1<<10), rng.Int63n(1<<8))
		in.AddRow("SlotOf", rng.Int63n(1<<8), rng.Int63n(1<<10))
	}
	l, _ := ParseLex(q1, "p, via, q")
	u, err := NewUnionAccess([]*Query{q1, q2}, in, l)
	if err != nil {
		b.Fatal(err)
	}
	if u.Total() == 0 {
		b.Skip("empty union")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.Access(rng.Int63n(u.Total())); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations for the design choices DESIGN.md calls out ---

// Access cost as a function of query size (number of layers): the k-path
// sweep isolates the per-layer constant of Algorithm 1.
func BenchmarkAblation_AccessVsPathLength(b *testing.B) {
	for _, k := range []int{2, 3, 4, 5} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			rng := rand.New(rand.NewSource(13))
			q, in := workload.KPath(rng, k, 1<<13, 1<<9, 0.2)
			var names []string
			for i := 0; i <= k; i++ {
				names = append(names, fmt.Sprintf("x%d", i))
			}
			l, _ := order.ParseLex(q, joinComma(names))
			la, err := access.BuildLex(q, in, l)
			if err != nil {
				b.Fatal(err)
			}
			if la.Total() == 0 {
				b.Skip("empty join")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := la.Access(rng.Int63n(la.Total())); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}

// Deterministic median-of-medians weighted selection vs sort-based
// selection: the O(n) primitive of Lemma 6.6 against the O(n log n)
// obvious alternative.
func BenchmarkAblation_WeightedSelect(b *testing.B) {
	n := 1 << 16
	rng := rand.New(rand.NewSource(14))
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(1 << 30)
	}
	b.Run("median-of-medians", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			items := make([]selection.WItem[int64], n)
			for j, k := range keys {
				items[j] = selection.WItem[int64]{Key: k, Weight: 1}
			}
			if _, _, ok := selection.WeightedSelect(items, int64(n/2)); !ok {
				b.Fatal("selection failed")
			}
		}
	})
	b.Run("sort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cp := append([]int64(nil), keys...)
			sort.Slice(cp, func(a, b int) bool { return cp[a] < cp[b] })
			_ = cp[n/2]
		}
	})
}

// Materialized fallback vs layered structure on a tractable input: the
// cost of ignoring the classification.
func BenchmarkAblation_MaterializedVsLayered(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	q, in := workload.TwoPath(rng, 1<<13, 1<<10, 0.3)
	l, _ := order.ParseLex(q, "x, y, z")
	b.Run("layered_build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := access.BuildLex(q, in, l); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("materialize_build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := access.BuildMaterializedLex(q, in, l)
			if m.Total() == 0 {
				b.Fatal("no answers")
			}
		}
	})
}

// --- Engine: cold build-and-access vs cached access ---

// Cold pays the O(n log n) preprocessing on every request (the version
// bump purges the cache); cached pays a map lookup plus one O(log n)
// access. The gap is the whole point of the serving engine.
func BenchmarkEngine_ColdVsCached(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	_, in := workload.TwoPath(rng, 1<<14, 1<<11, 0.3)
	spec := engine.Spec{Query: "Q(x, y, z) :- R(x, y), S(y, z)", Order: "x, y, z"}
	probe := func(b *testing.B, e *engine.Engine) {
		h, err := e.Prepare(spec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.Access(h.Total() / 2); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("cold", func(b *testing.B) {
		e := engine.New(in, engine.Options{})
		for i := 0; i < b.N; i++ {
			e.Mutate(func(*database.Instance) {}) // invalidate: forces a rebuild
			probe(b, e)
		}
	})
	b.Run("cached", func(b *testing.B) {
		e := engine.New(in, engine.Options{})
		probe(b, e) // warm the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			probe(b, e)
		}
	})
}

// --- Parallel preprocessing: worker fan-out vs pinned-serial ---

func BenchmarkPreprocess_SerialVsParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	q, in := workload.TwoPath(rng, 1<<16, 1<<13, 0.3)
	l, _ := order.ParseLex(q, "x, y, z")
	for _, mode := range []struct {
		name  string
		limit int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			par.SetLimit(mode.limit)
			defer par.SetLimit(0)
			for i := 0; i < b.N; i++ {
				if _, err := access.BuildLex(q, in, l); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Union construction builds 2^m − 1 member structures — the widest
// fan-out in the codebase.
func BenchmarkUnion_BuildSerialVsParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	q1 := MustParseQuery("Q1(p, via, q) :- Desk(p, via), Meets(via, q)")
	q2 := MustParseQuery("Q2(p, via, q) :- Slot(p, via), SlotOf(via, q)")
	in := NewInstance()
	for i := 0; i < 1<<13; i++ {
		in.AddRow("Desk", rng.Int63n(1<<10), rng.Int63n(1<<7))
		in.AddRow("Meets", rng.Int63n(1<<7), rng.Int63n(1<<10))
		in.AddRow("Slot", rng.Int63n(1<<10), rng.Int63n(1<<8))
		in.AddRow("SlotOf", rng.Int63n(1<<8), rng.Int63n(1<<10))
	}
	l, _ := ParseLex(q1, "p, via, q")
	for _, mode := range []struct {
		name  string
		limit int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			par.SetLimit(mode.limit)
			defer par.SetLimit(0)
			for i := 0; i < b.N; i++ {
				if _, err := NewUnionAccess([]*Query{q1, q2}, in, l); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Introduction scenario at scale ---

func BenchmarkEpidemic_QuantileAccess(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	q, in := workload.Epidemic(rng, 1<<16, 1<<15, 1<<12, 256, 1000)
	l, _ := order.ParseLex(q, "cases desc, city, age")
	la, err := access.BuildLex(q, in, l)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := la.Access(rng.Int63n(la.Total())); err != nil {
			b.Fatal(err)
		}
	}
}
