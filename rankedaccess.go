// Package rankedaccess is a Go implementation of
//
//	Carmeli, Tziavelis, Gatterbauer, Kimelfeld, Riedewald:
//	"Tractable Orders for Direct Access to Ranked Answers of
//	Conjunctive Queries" (PODS 2021; extended version arXiv:2012.11965).
//
// It provides, for conjunctive queries over in-memory relations:
//
//   - ranked direct access by lexicographic orders: after O(n log n)
//     preprocessing, the k-th answer in order in O(log n), plus inverted
//     and next-answer access (Theorems 3.3/4.1, Algorithms 1 and 2);
//   - ranked direct access by sum-of-weights orders where possible
//     (Theorem 5.1);
//   - the selection problem (a single ranked access) in O(n) for
//     lexicographic orders of free-connex CQs (Theorem 6.1) and in
//     O(n log n) for SUM orders with fmh ≤ 2 (Theorem 7.3);
//   - complete decidable classification of all of the above, with
//     hardness certificates (disruptive trios, free/L-paths, α_free,
//     chordless 4-paths), including the refinements under unary
//     functional dependencies (§8);
//   - ranked enumeration by SUM for every free-connex CQ and
//     uniformly-random-order enumeration, for contrast and convenience.
//
// The entry points are ParseQuery / ParseLex / ParseFDs for inputs,
// Classify for the dichotomies, NewDirectAccess / NewDirectAccessSum for
// access structures, and Select / SelectBySum for one-shot selection.
//
// For serving repeated queries, NewEngine returns a concurrency-safe
// Engine that plans each request through the classification (layered
// lexicographic structure, SUM structure, or materialized fallback),
// caches built structures in an LRU keyed by (query, order, FDs),
// shares one build among concurrent requests for the same key, and
// absorbs instance mutations through an MVCC write path: writes go
// through a WAL and publish new immutable versioned epochs, and a stale
// structure catches up by republishing unchanged (untouched relations),
// merging a small sorted delta overlay, or — past a threshold, in the
// background — re-preprocessing. Engine.Prepare yields
// a Handle safe for unbounded concurrent Access/Total/Inverted probes;
// Engine.Access answers a batch of indices in one call. Preprocessing
// fans out across bounded worker goroutines (see internal/par).
//
// For prepared-statement-style serving, Engine.Register names a spec
// once and returns a PreparedQuery probed by name with zero
// re-parsing (re-prepared automatically when the instance mutates),
// and Cursor streams ranked windows via Seek/Next/NextN or a
// range-over-func All iterator. cmd/serve exposes all of it over
// HTTP/JSON as the versioned /v1 prepared-query API; package client is
// the matching Go SDK.
package rankedaccess

import (
	"errors"

	"rankedaccess/internal/access"
	"rankedaccess/internal/classify"
	"rankedaccess/internal/cq"
	"rankedaccess/internal/database"
	"rankedaccess/internal/decompose"
	"rankedaccess/internal/delta"
	"rankedaccess/internal/engine"
	"rankedaccess/internal/enum"
	"rankedaccess/internal/fd"
	"rankedaccess/internal/order"
	"rankedaccess/internal/selection"
	"rankedaccess/internal/ucq"
	"rankedaccess/internal/values"
)

// Core re-exported types. Answers are value slices indexed by variable
// id; use AnswerTuple to project one onto the query head.
type (
	// Query is a conjunctive query (see ParseQuery).
	Query = cq.Query
	// VarID identifies a variable within a Query.
	VarID = cq.VarID
	// Value is a dictionary-encoded domain value.
	Value = values.Value
	// Instance is a database instance mapping relation names to relations.
	Instance = database.Instance
	// Relation is a bag of fixed-arity tuples.
	Relation = database.Relation
	// Answer assigns a Value to each free variable, indexed by VarID.
	Answer = order.Answer
	// LexOrder is a (possibly partial) lexicographic order with
	// per-variable direction.
	LexOrder = order.Lex
	// SumOrder assigns weight functions to variables; answers are ranked
	// by the sum of their values' weights.
	SumOrder = order.Sum
	// TupleSumOrder assigns weights to relation tuples instead of
	// attribute values (§2.2's alternative convention, for full
	// self-join-free CQs).
	TupleSumOrder = order.TupleSum
	// FDSet is a set of unary functional dependencies.
	FDSet = fd.Set
	// Verdict is a classification outcome with certificate.
	Verdict = classify.Verdict
	// DirectAccess is the lexicographic direct-access structure.
	DirectAccess = access.Lex
	// DirectAccessBuf is a reusable probe buffer for DirectAccess: pair
	// one with each goroutine (DirectAccess.NewBuf) and probe through
	// AccessInto / AppendTuple / AppendRange for zero-allocation
	// steady-state access.
	DirectAccessBuf = access.LexBuf
	// SumDirectAccess is the SUM direct-access structure.
	SumDirectAccess = access.Sum
	// SumEnumerator enumerates answers by non-decreasing weight.
	SumEnumerator = enum.SumEnumerator
)

// Errors surfaced by access and selection. All layers (access, engine,
// shard, serve, and the remote client in client/) wrap these sentinels,
// so errors.Is tests hold across the whole stack.
var (
	// ErrOutOfBound: the requested index is ≥ |Q(I)| or negative.
	ErrOutOfBound = access.ErrOutOfBound
	// ErrOutOfRange is ErrOutOfBound under its serving-API name: the
	// requested rank or range lies outside [0, |Q(I)|). The v1 HTTP API
	// maps it to 416 Requested Range Not Satisfiable.
	ErrOutOfRange = access.ErrOutOfBound
	// ErrNotAnAnswer: inverted access of a tuple that is not an answer.
	ErrNotAnAnswer = access.ErrNotAnAnswer
	// ErrNotPrepared: no prepared query registered under the requested
	// name (mapped to HTTP 404 by the v1 API).
	ErrNotPrepared = engine.ErrNotPrepared
	// ErrIntractable: the (query, order) pair is on the intractable
	// side of the paper's dichotomy. Every *access.IntractableError
	// unwraps to it (mapped to HTTP 422 by the v1 API's strict mode).
	ErrIntractable = access.ErrIntractable
	// ErrCursorInvalidated: the instance mutated under a cursor bound
	// to a prepared query (mapped to HTTP 410 by the v1 API).
	ErrCursorInvalidated = engine.ErrCursorInvalidated
)

// ParseQuery parses the textual form "Q(x, z) :- R(x, y), S(y, z)".
func ParseQuery(src string) (*Query, error) { return cq.Parse(src) }

// MustParseQuery is ParseQuery that panics on error.
func MustParseQuery(src string) *Query { return cq.MustParse(src) }

// ParseLex parses a lexicographic order such as "x, z desc, y" over q's
// free variables. The empty string denotes the empty partial order (any
// tractable order; useful for random-order enumeration).
func ParseLex(q *Query, src string) (LexOrder, error) { return order.ParseLex(q, src) }

// ParseFDs parses unary functional dependencies, one per string, in the
// form "R: x -> y".
func ParseFDs(q *Query, srcs ...string) (FDSet, error) {
	var out FDSet
	for _, s := range srcs {
		fds, err := fd.Parse(q, s)
		if err != nil {
			return nil, err
		}
		out = append(out, fds...)
	}
	return out, nil
}

// NewInstance returns an empty database instance.
func NewInstance() *Instance { return database.NewInstance() }

// IdentitySum builds a SUM order weighing each given variable by its own
// value.
func IdentitySum(vars ...VarID) SumOrder { return order.IdentitySum(vars...) }

// TableSum builds a SUM order from explicit per-variable weight tables.
func TableSum(tables map[VarID]map[Value]float64) SumOrder { return order.TableSum(tables) }

// Problem selects one of the four classified problems.
type Problem int

const (
	// DirectAccessLex is ranked direct access by a lexicographic order.
	DirectAccessLex Problem = iota
	// SelectionLex is the selection problem under a lexicographic order.
	SelectionLex
	// DirectAccessSum is ranked direct access by a SUM order.
	DirectAccessSum
	// SelectionSum is the selection problem under a SUM order.
	SelectionSum
)

// Classify runs the paper's dichotomy for the given problem. The lex
// order is ignored for the SUM problems; fds may be nil.
func Classify(p Problem, q *Query, l LexOrder, fds FDSet) Verdict {
	if len(fds) == 0 {
		switch p {
		case DirectAccessLex:
			return classify.DirectAccessLex(q, l)
		case SelectionLex:
			return classify.SelectionLex(q, l)
		case DirectAccessSum:
			return classify.DirectAccessSum(q)
		default:
			return classify.SelectionSum(q)
		}
	}
	switch p {
	case DirectAccessLex:
		v, _ := classify.DirectAccessLexFD(q, l, fds)
		return v
	case SelectionLex:
		v, _ := classify.SelectionLexFD(q, l, fds)
		return v
	case DirectAccessSum:
		v, _ := classify.DirectAccessSumFD(q, fds)
		return v
	default:
		v, _ := classify.SelectionSumFD(q, fds)
		return v
	}
}

// NewDirectAccess builds the ⟨n log n, log n⟩ lexicographic direct-access
// structure; fds may be nil. It fails with *access.IntractableError
// (carrying the hardness certificate) on the intractable side.
func NewDirectAccess(q *Query, in *Instance, l LexOrder, fds FDSet) (*DirectAccess, error) {
	if len(fds) == 0 {
		return access.BuildLex(q, in, l)
	}
	return access.BuildLexFD(q, in, l, fds)
}

// NewDirectAccessSum builds the ⟨n log n, 1⟩ SUM direct-access structure
// for the tractable class of Theorem 5.1; fds may be nil.
func NewDirectAccessSum(q *Query, in *Instance, w SumOrder, fds FDSet) (*SumDirectAccess, error) {
	if len(fds) == 0 {
		return access.BuildSum(q, in, w)
	}
	return access.BuildSumFD(q, in, w, fds)
}

// Select answers the selection problem by a lexicographic order in O(n)
// (Theorem 6.1); fds may be nil.
func Select(q *Query, in *Instance, l LexOrder, k int64, fds FDSet) (Answer, error) {
	if len(fds) == 0 {
		return selection.SelectLex(q, in, l, k)
	}
	return selection.SelectLexFD(q, in, l, fds, k)
}

// SelectBySum answers the selection problem by a SUM order in O(n log n)
// (Theorem 7.3); fds may be nil.
func SelectBySum(q *Query, in *Instance, w SumOrder, k int64, fds FDSet) (Answer, error) {
	if len(fds) == 0 {
		return selection.SelectSum(q, in, w, k)
	}
	return selection.SelectSumFD(q, in, w, fds, k)
}

// Count returns |Q(I)| in linear time for free-connex CQs.
func Count(q *Query, in *Instance) (int64, error) {
	return selection.CountAnswers(q, in)
}

// NewSumEnumerator prepares ranked enumeration by SUM with logarithmic
// delay for any free-connex CQ (the any-k setting the paper contrasts
// direct access with).
func NewSumEnumerator(q *Query, in *Instance, w SumOrder) (*SumEnumerator, error) {
	return enum.NewSumEnumerator(q, in, w)
}

// NewTupleSumEnumerator prepares ranked enumeration ordered by the sum of
// per-tuple weights, for full self-join-free CQs (§2.2's tuple-weight
// convention).
func NewTupleSumEnumerator(q *Query, in *Instance, w TupleSumOrder) (*SumEnumerator, error) {
	return enum.NewTupleSumEnumerator(q, in, w)
}

// Decomposed is an acyclic rewrite of a (possibly cyclic) query over
// materialized bag relations (see MakeAcyclic).
type Decomposed = decompose.Result

// MakeAcyclic rewrites a cyclic query into an acyclic answer-equivalent
// one by materializing joins of at most maxGroup atoms per bag — the
// hypertree-decomposition route of the paper's "Applicability" note.
// Preprocessing may cost up to O(n^maxGroup); afterwards every access and
// selection algorithm applies to the rewrite. The rewrite shares variable
// ids with the input query.
func MakeAcyclic(q *Query, in *Instance, maxGroup int) (*Decomposed, error) {
	return decompose.MakeAcyclic(q, in, maxGroup)
}

// UnionAccess is a ranked direct-access structure over a union of CQs
// sharing a head (deduplicated), built from one structure per
// intersection with inclusion–exclusion ranks — the UCQ generalization
// of Carmeli et al. [15] that the paper's introduction recalls.
type UnionAccess = ucq.Union

// NewUnionAccess builds a union structure: every intersection of the
// member CQs must be on the tractable side of Theorem 4.1 for one shared
// completion of the requested order (resolved against the first query's
// variables). Access costs O(log² n); construction O(2^m · n log n) for
// m member CQs.
func NewUnionAccess(queries []*Query, in *Instance, l LexOrder) (*UnionAccess, error) {
	return ucq.BuildUnion(queries, in, l)
}

// Accessor is the common read interface of all direct-access structures:
// the layered lexicographic structure, the SUM structure, and the
// materializing fallback.
type Accessor interface {
	// Total returns |Q(I)|.
	Total() int64
	// Access returns the k-th answer of the sorted answer list.
	Access(k int64) (Answer, error)
}

// NewDirectAccessAny builds the best available access structure for the
// requested lexicographic order: the ⟨n log n, log n⟩ layered structure
// when (q, l, fds) is on the tractable side of the dichotomy, and the
// materialize-and-sort fallback (Θ(|Q(I)|) construction, O(1) access)
// otherwise — the paper proves nothing substantially better exists for
// those inputs. The returned flag reports which side was taken.
func NewDirectAccessAny(q *Query, in *Instance, l LexOrder, fds FDSet) (acc Accessor, tractable bool, err error) {
	da, err := NewDirectAccess(q, in, l, fds)
	if err == nil {
		return da, true, nil
	}
	var ie *access.IntractableError
	if !errors.As(err, &ie) {
		return nil, false, err // data/parse error, not a hardness verdict
	}
	return access.BuildMaterializedLex(q, in, l), false, nil
}

// Engine is the concurrency-safe planning/caching query engine: it
// classifies each request, builds the best structure (layered lex, SUM,
// or materialized fallback), caches it in an LRU keyed by (query, order,
// FD set, shard count, instance version), and invalidates on mutation.
type Engine = engine.Engine

// EngineOptions configures NewEngine.
type EngineOptions = engine.Options

// EngineSpec is a textual ranked-access request against an Engine.
// Setting Shards ≥ 2 partitions the instance on a free variable and
// serves global ranked access by merging per-shard answer counts; the
// answers are identical to unsharded execution (internal/shard).
type EngineSpec = engine.Spec

// EngineHandle is a prepared, immutable access structure; safe for
// concurrent use by any number of goroutines.
type EngineHandle = engine.Handle

// PreparedQuery is a named registration of an EngineSpec: parsed and
// built once by Engine.Register, probed many times by name with zero
// re-parsing, and transparently re-prepared when the instance mutates.
// Engine.Prepared resolves a name; Engine.ListPrepared and
// Engine.Evict manage the registry.
type PreparedQuery = engine.PreparedQuery

// PreparedID identifies one registration of a name (re-registration
// bumps Gen).
type PreparedID = engine.PreparedID

// PreparedInfo describes one registered query (Engine.ListPrepared).
type PreparedInfo = engine.PreparedInfo

// Cursor is a stateful scan over a prepared handle: Seek/Next/NextN in
// O(log n) each through the allocation-free access paths, plus a
// range-over-func All(k0, k1) iterator. Open one per goroutine via
// PreparedQuery.Cursor or EngineHandle.Cursor; either way the cursor is
// pinned to its handle's immutable epoch and streams its full result
// set unchanged across concurrent instance mutations.
type Cursor = engine.Cursor

// NewEngine returns an Engine over the given instance. The Engine owns
// the instance from here on: mutate it only through the write path
// (Engine.ApplyBatch, Engine.AddRows, Engine.DeleteRows, or
// Engine.Mutate) so writes are logged and cached structures advance to
// the new version.
func NewEngine(in *Instance, opts EngineOptions) *Engine { return engine.New(in, opts) }

// Mutation is one relational write — rows of one relation inserted or
// deleted — grouped atomically by Engine.ApplyBatch. Rows is flat with
// stride Arity.
type Mutation = delta.Mutation

// MutationOp is the kind of one Mutation.
type MutationOp = delta.Op

// Mutation op kinds.
const (
	OpInsert = delta.OpInsert
	OpDelete = delta.OpDelete
	OpReset  = delta.OpReset
)

// CheckpointInfo reports what Engine.Checkpoint persisted.
type CheckpointInfo = engine.CheckpointInfo

// RestoreInfo reports what OpenEngine or Engine.Restore loaded.
type RestoreInfo = engine.RestoreInfo

// OpenEngine warm-starts an Engine from the newest snapshot in dir (as
// written by Engine.Checkpoint): the instance, every persisted access
// structure (reconstructed zero-copy over the mapped file), and the
// prepared-query registry are restored without re-running
// preprocessing. warm is false when dir holds no snapshot and the
// engine is simply fresh. Call Engine.Close when the engine and all
// handles obtained from it are done, to release the file mappings.
func OpenEngine(dir string, opts EngineOptions) (e *Engine, warm bool, err error) {
	return engine.Open(dir, opts)
}

// AnswerTuple projects an answer onto the query head, in head order.
func AnswerTuple(q *Query, a Answer) []Value {
	return AppendAnswerTuple(q, make([]Value, 0, len(q.Head)), a)
}

// AppendAnswerTuple appends the head projection of a to dst and returns
// the extended slice; it allocates only when dst lacks capacity. This is
// the buffer-reuse variant of AnswerTuple for high-throughput loops.
func AppendAnswerTuple(q *Query, dst []Value, a Answer) []Value {
	for _, v := range q.Head {
		dst = append(dst, a[v])
	}
	return dst
}
